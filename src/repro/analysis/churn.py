"""Longitudinal periphery churn, measured through the result store.

The paper's discovery census (November 2020) and loop survey (December
2020) straddle weeks of real-world churn — DHCPv6-PD rebinds, route flaps,
dying CPEs.  This experiment reproduces the longitudinal workflow end to
end on the store:

1. **Round 1**: a sharded campaign scans one ISP block and commits its
   rows as snapshot ``round-1``.
2. **Churn injection**: a :mod:`repro.faults` schedule withdraws the ISP
   edge router's routes for a deterministic fraction of customer
   delegations (``route-flap`` covering the whole scan window).
3. **Round 2**: the identical campaign re-runs under the flap schedule and
   commits snapshot ``round-2``.
4. **Diff**: :func:`repro.store.query.diff` reports the churn; because the
   injected fault set is known exactly, the report is *checkable* — every
   lost responder must sit behind a flapped delegation and every stable
   responder behind an unflapped one.

``repro-xmap store diff <dir> round-1 round-2`` renders the same report
from the committed store.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import List, Set

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign
from repro.faults import ROUTE_FLAP, FaultEvent, FaultSchedule
from repro.net.addr import IPv6Prefix
from repro.net.spec import TopologySpec
from repro.store import ChurnReport, ResultStore, diff

ROUND_A = "round-1"
ROUND_B = "round-2"


@dataclass
class ChurnRun:
    """A two-round churn experiment plus its ground truth."""

    store_dir: str
    isp: str
    flapped: List[str]  # delegated prefixes withdrawn during round 2
    report: ChurnReport
    #: Ground truth derived from round 1 + the injected fault set.
    expected_lost: Set[int] = field(default_factory=set)
    expected_stable: Set[int] = field(default_factory=set)

    @property
    def exact(self) -> bool:
        """Does the store diff reproduce the injected churn exactly?"""
        return (
            self.report.lost == self.expected_lost
            and self.report.stable == self.expected_stable
            and not self.report.new
        )

    def verify(self) -> None:
        """Assert the stable/lost split matches the flap window exactly."""
        if self.report.lost != self.expected_lost:
            raise AssertionError(
                f"lost set mismatch: diff reported {len(self.report.lost)} "
                f"responder(s), flap window predicts "
                f"{len(self.expected_lost)}"
            )
        if self.report.stable != self.expected_stable:
            raise AssertionError(
                f"stable set mismatch: diff reported "
                f"{len(self.report.stable)} responder(s), flap window "
                f"predicts {len(self.expected_stable)}"
            )
        if self.report.new:
            raise AssertionError(
                f"route withdrawal cannot mint responders, yet diff "
                f"reports {len(self.report.new)} new"
            )

    def render(self) -> str:
        lines = [
            f"longitudinal churn on {self.isp} "
            f"({len(self.flapped)} delegation(s) flapped in round 2):",
            self.report.render(),
            f"  ground truth: lost == flapped-only responders: "
            f"{self.report.lost == self.expected_lost}; "
            f"stable == unflapped responders: "
            f"{self.report.stable == self.expected_stable}",
        ]
        return "\n".join(lines)


def run_churn_experiment(
    store_dir: str,
    isp: str = "in-jio-broadband",
    scale: float = 20_000.0,
    seed: int = 7,
    shards: int = 2,
    flap_fraction: float = 0.25,
    rate_pps: float = 25_000.0,
) -> ChurnRun:
    """Run both rounds into ``store_dir`` and diff them (see module doc)."""
    spec = TopologySpec.deployment(profiles=(isp,), scale=scale, seed=seed)
    built = spec.build()
    block = built.handle.isps[isp]
    config = ScanConfig(
        scan_range=ScanRange.parse(block.scan_spec),
        seed=seed,
        rate_pps=rate_pps,
    )

    Campaign(
        spec, {isp: config}, shards=shards, prebuilt=built,
        store_dir=store_dir, snapshot=ROUND_A,
    ).run()

    # Withdraw a deterministic fraction of customer delegations for the
    # whole of round 2.  Each flap names the ISP edge router and one
    # delegated prefix — exactly what a PD rebind or an edge routing
    # incident takes off the table between two real scan rounds.
    rng = random.Random(seed)
    truths = sorted(block.truths, key=lambda t: str(t.delegated))
    count = max(1, int(len(truths) * flap_fraction))
    flapped = [str(t.delegated) for t in rng.sample(truths, count)]
    window_end = 10.0 + config.scan_range.count / rate_pps  # covers the scan
    schedule = FaultSchedule(
        seed=seed,
        events=tuple(
            FaultEvent(
                kind=ROUTE_FLAP, start=0.0, end=window_end,
                device=f"isp-{isp}", prefix=prefix,
            )
            for prefix in flapped
        ),
    )
    flapped_config = dataclasses.replace(config, fault_schedule=schedule)

    Campaign(
        spec, {isp: flapped_config}, shards=shards, prebuilt=spec.build(),
        store_dir=store_dir, snapshot=ROUND_B,
    ).run()

    store = ResultStore(store_dir)
    report = diff(store, ROUND_A, ROUND_B)

    # Ground truth from round 1: a responder is expected-lost iff every
    # target it answered for sits inside a flapped delegation.
    prefixes = [IPv6Prefix.from_string(text) for text in flapped]

    def _in_flap(target) -> bool:
        return any(prefix.contains(target) for prefix in prefixes)

    lost: Set[int] = set()
    stable: Set[int] = set()
    for row in store.iter_rows(store.snapshot(ROUND_A).segments):
        (lost if _in_flap(row.target) else stable).add(row.responder.value)
    lost -= stable  # answered for an unflapped delegation too: still there

    return ChurnRun(
        store_dir=store_dir,
        isp=isp,
        flapped=flapped,
        report=report,
        expected_lost=lost,
        expected_stable=stable,
    )
