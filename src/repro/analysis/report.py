"""Plain-text report formatting for the table/figure benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def fmt_count(value: float) -> str:
    """Humanise a device count the way the paper does (52.5M, 741.0k)."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.1f}k"
    return f"{value:,.0f}"


def fmt_pct(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}%"


@dataclass
class ComparisonTable:
    """A paper-vs-measured table rendered as aligned plain text."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]] + [
            [str(c) for c in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(
            h.ljust(widths[i]) for i, h in enumerate(cells[0])
        )
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
