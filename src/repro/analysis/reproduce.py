"""One-call reproduction of the paper's entire evaluation.

:func:`reproduce_all` runs every pipeline — subnet inference, the fifteen
discovery scans, the application-layer sweep, vendor identification, the
loop surveys, the BGP-wide survey, the amplification attack, and the router
case study — and renders every table and figure into a single report.

This is what ``repro-xmap reproduce`` and ``examples/full_reproduction.py``
call; the per-table benchmarks under ``benchmarks/`` do the same work with
assertions and timings attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis import figures, tables
from repro.analysis.report import ComparisonTable
from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.discovery.periphery import PeripheryCensus, census_from_scan, discover
from repro.engine import Campaign, ProbeSpec
from repro.net.spec import BuiltTopology, TopologySpec
from repro.discovery.subnet import infer_subprefix_length
from repro.discovery.vendor_id import IdentifiedDevice, VendorIdentifier
from repro.isp.builder import Deployment, build_deployment
from repro.loop.attack import run_loop_attack
from repro.loop.bgp import GlobalInternet, build_global_internet
from repro.loop.casestudy import run_case_study
from repro.loop.detector import LoopSurvey, find_loops
from repro.net.packet import MAX_HOP_LIMIT
from repro.services.zgrab import AppScanner, AppScanResult
from repro.telemetry.metrics import MetricsRegistry


@dataclass
class ReproductionRun:
    """Everything one full run produced, for programmatic inspection."""

    scale: float
    seed: int
    deployment: Deployment
    censuses: Dict[str, PeripheryCensus] = field(default_factory=dict)
    app_results: Dict[str, AppScanResult] = field(default_factory=dict)
    identified: Dict[str, List[IdentifiedDevice]] = field(default_factory=dict)
    loop_surveys: Dict[str, LoopSurvey] = field(default_factory=dict)
    world: Optional[GlobalInternet] = None
    sections: List[str] = field(default_factory=list)
    #: Per-table telemetry: data-volume counters per stage, a
    #: ``reproduce_stage_seconds`` gauge per stage, and the Table II
    #: campaign's full scanner metrics merged in.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def report(self) -> str:
        return "\n\n".join(self.sections)

    def write_metrics(self, path: str) -> None:
        """Write the per-table metrics snapshot as NDJSON."""
        with open(path, "w") as handle:
            for line in self.metrics.ndjson_lines():
                handle.write(line + "\n")


def reproduce_all(
    scale: float = 20_000.0,
    seed: int = 7,
    include_bgp: bool = True,
    include_case_study: bool = True,
    progress=None,
    metrics_out: Optional[str] = None,
) -> ReproductionRun:
    """Run the full evaluation; returns the run with a rendered report."""
    say = progress or (lambda _msg: None)

    say(f"building the simulated Internet (scale 1/{scale:g})")
    deployment = build_deployment(scale=scale, seed=seed)
    run = ReproductionRun(scale=scale, seed=seed, deployment=deployment)
    metrics = run.metrics
    _stage_t0 = [time.perf_counter()]

    def stage_done(stage: str) -> None:
        now = time.perf_counter()
        metrics.gauge("reproduce_stage_seconds", stage=stage).set(
            now - _stage_t0[0]
        )
        _stage_t0[0] = now

    stage_done("build")

    # -- Table I ----------------------------------------------------------------
    say("inferring delegation lengths (Table I)")
    inferences = {}
    for key, isp in deployment.isps.items():
        inferences[key] = infer_subprefix_length(
            deployment.network, deployment.vantage, isp.scan_base, seed=seed
        )
    run.sections.append(tables.table1_subnet_inference(inferences).render())
    metrics.counter("reproduce_inferences").inc(len(inferences))
    stage_done("table1_subnet_inference")

    # -- Table II / III ------------------------------------------------------------
    # The multi-ISP sweep runs through the orchestration engine: one
    # campaign over all fifteen delegated windows, merged per range.  The
    # serial executor reuses the live deployment (same network, same virtual
    # clock) and the probe spec matches ``discover()``'s seed-derived
    # validator, so the censuses are identical to fifteen single-shot scans.
    say("running the fifteen discovery scans (Table II)")
    campaign = Campaign(
        TopologySpec.deployment(
            profiles=tuple(deployment.isps), scale=scale, seed=seed
        ),
        {
            key: ScanConfig(scan_range=ScanRange.parse(isp.scan_spec), seed=seed)
            for key, isp in deployment.isps.items()
        },
        probe=ProbeSpec.for_seed(seed),
        executor="serial",
        prebuilt=BuiltTopology(deployment.network, deployment.vantage, deployment),
    )
    campaign_result = campaign.run()
    metrics.merge(campaign_result.metrics)
    for key, scan_result in campaign_result.results.items():
        run.censuses[key] = census_from_scan(scan_result)
        metrics.counter("reproduce_census_records", isp=key).inc(
            len(run.censuses[key].records)
        )
    run.sections.append(
        tables.table2_periphery(run.censuses, scale).render()
    )
    all_last_hops = [
        record.last_hop
        for census in run.censuses.values()
        for record in census.records
    ]
    run.sections.append(tables.table3_iid(all_last_hops).render())
    stage_done("table2_periphery")

    # -- Tables IV/V/VII/VIII + Figures 2/3 ---------------------------------------
    say("sweeping application services (Tables V, VII, VIII)")
    scanner = AppScanner(deployment.network, deployment.vantage)
    vid = VendorIdentifier(deployment.catalog)
    for key, census in run.censuses.items():
        run.app_results[key] = scanner.scan(census.last_hop_addresses())
        run.identified[key] = vid.identify(
            census.records, run.app_results[key].observations
        )
    all_identified = [d for ds in run.identified.values() for d in ds]
    all_observations = [
        o for r in run.app_results.values() for o in r.observations
    ]
    run.sections.append(tables.table4_vendors(all_identified, scale).render())
    alive = sorted(
        {o.target for o in all_observations if o.alive},
    )
    run.sections.append(tables.table5_service_iid(alive).render())
    sizes = {key: run.censuses[key].n_unique for key in run.censuses}
    run.sections.append(
        tables.table7_services(run.app_results, sizes, scale).render()
    )
    run.sections.append(
        tables.table8_software(run.app_results.values(), scale).render()
    )
    matrix = figures.vendor_service_matrix(all_identified, all_observations)
    run.sections.append(figures.figure2_top_vendors(matrix).render())
    run.sections.append(figures.figure3_service_vendors(matrix).render())
    metrics.counter("reproduce_app_observations").inc(len(all_observations))
    metrics.counter("reproduce_identified_devices").inc(len(all_identified))
    stage_done("table7_services")

    # -- Tables XI + Figure 6 -----------------------------------------------------
    say("locating routing loops (Table XI)")
    for key, isp in deployment.isps.items():
        run.loop_surveys[key] = find_loops(
            deployment.network, deployment.vantage, isp.scan_spec, seed=seed
        )
    run.sections.append(
        tables.table11_loops(run.loop_surveys, scale).render()
    )
    vendor_of = {d.last_hop.value: d.vendor for d in all_identified}
    loop_vendor_by_as: Dict[str, Dict[str, int]] = {}
    for as_label, key in (
        ("AS4134", "cn-telecom-broadband"),
        ("AS4837", "cn-unicom-broadband"),
        ("AS9808", "cn-mobile-broadband"),
    ):
        counts: Dict[str, int] = {}
        for record in run.loop_surveys[key].records:
            vendor = vendor_of.get(record.last_hop.value)
            if vendor:
                counts[vendor] = counts.get(vendor, 0) + 1
        loop_vendor_by_as[as_label] = counts
    run.sections.append(
        figures.figure6_loop_vendors(loop_vendor_by_as).render()
    )
    metrics.counter("reproduce_loop_records").inc(
        sum(len(s.records) for s in run.loop_surveys.values())
    )
    stage_done("table11_loops")

    # -- the attack (§VI-A) ----------------------------------------------------------
    say("mounting the amplification attack (§VI-A)")
    attack_table = ComparisonTable(
        "§VI-A amplification (one attacker packet per victim)",
        ("Victim block", "crossings", "paper bound"),
    )
    for key in ("cn-unicom-broadband", "cn-mobile-broadband"):
        survey = run.loop_surveys[key]
        if not survey.records:
            continue
        isp = deployment.isps[key]
        victim = isp.truth_by_last_hop()[survey.records[0].last_hop.value]
        target = victim.delegated.subprefix(7, 64).address(0xA77)
        deployment.network.advance(5.0)
        report = run_loop_attack(
            deployment.network, deployment.vantage, target,
            isp.router.name, victim.name, hop_limit=MAX_HOP_LIMIT,
        )
        attack_table.add(isp.profile.isp, report.amplification,
                         f"255-n = {report.theoretical}")
        metrics.gauge(
            "reproduce_attack_crossings", isp=key
        ).set(report.amplification)
    run.sections.append(attack_table.render())
    stage_done("attack")

    # -- Tables IX/X + Figure 5 ---------------------------------------------------
    if include_bgp:
        say("scanning every BGP-advertised prefix (Tables IX-X, Figure 5)")
        run.world = build_global_internet(seed=seed, scale=scale / 10)
        world_records = []
        loop_addrs = []
        for as_truth in run.world.ases:
            census = discover(
                run.world.network, run.world.vantage, as_truth.scan_spec,
                seed=seed,
            )
            world_records.extend(census.records)
            survey = find_loops(
                run.world.network, run.world.vantage, as_truth.scan_spec,
                seed=seed,
            )
            loop_addrs.extend(r.last_hop for r in survey.records)
        asns, countries = set(), set()
        loop_asns, loop_countries = set(), set()
        for record in world_records:
            info = run.world.table.lookup(record.last_hop)
            asns.add(info.asn)
            countries.add(info.country)
        for addr in loop_addrs:
            info = run.world.table.lookup(addr)
            loop_asns.add(info.asn)
            loop_countries.add(info.country)
        run.sections.append(
            tables.table9_bgp(
                len(world_records), len(asns), len(countries),
                len(loop_addrs), len(loop_asns), len(loop_countries),
                scale / 10, 10.0,
            ).render()
        )
        run.sections.append(tables.table10_loop_iid(loop_addrs).render())
        asn_table, country_table = figures.figure5_loop_asn_country(
            loop_addrs, run.world.table
        )
        run.sections.append(asn_table.render())
        run.sections.append(country_table.render())
        metrics.counter("reproduce_bgp_records").inc(len(world_records))
        metrics.counter("reproduce_bgp_loop_addrs").inc(len(loop_addrs))
        stage_done("table9_bgp")

    # -- Table XII -----------------------------------------------------------------
    if include_case_study:
        say("bench-testing the 99-router roster (Table XII)")
        results = run_case_study()
        run.sections.append(tables.table12_case_study(results).render())
        metrics.counter("reproduce_case_study_units").inc(len(results))
        metrics.counter("reproduce_case_study_vulnerable").inc(
            sum(1 for r in results if r.vulnerable)
        )
        stage_done("table12_case_study")

    if metrics_out:
        run.write_metrics(metrics_out)
        say(f"metrics snapshot written to {metrics_out}")

    return run
