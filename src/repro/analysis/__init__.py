"""Analysis layer: regenerates the paper's tables and figures.

Every function takes *measured* pipeline outputs (censuses, app-scan
observations, loop surveys) — never ground truth — and returns structured
rows plus a formatted text block, so the benchmark per table/figure is a
thin driver around one of these functions.
"""

from repro.analysis.report import ComparisonTable, fmt_count, fmt_pct
from repro.analysis import tables, figures

__all__ = ["ComparisonTable", "fmt_count", "fmt_pct", "tables", "figures"]
