"""Responsible-disclosure reporting (§VII).

The paper "responsibly disclose[s] all issues and vulnerabilities to
involved vendors and ASes" — 24 vendors confirmed the routing loop and >131
CNVD/CVE tracking numbers came back.  This module generates the per-vendor
advisory material from measurement outputs: which of a vendor's devices
loop, which expose what services on which outdated software (with the CVE
counts that make the lag exploitable), and a deterministic tracking
identifier per (vendor, finding-class) pair.

Inputs are measured artefacts only (loop surveys, vendor identifications,
app-scan observations); the generator never touches ground truth.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from repro.discovery.vendor_id import IdentifiedDevice
from repro.loop.detector import LoopSurvey
from repro.services.cve import CveDatabase, DEFAULT_CVE_DB, family_of
from repro.services.zgrab import ServiceObservation

LOOP_FINDING = "routing-loop"
SERVICE_FINDING = "exposed-service"


@dataclass
class Finding:
    """One issue class affecting one vendor."""

    vendor: str
    kind: str  # LOOP_FINDING | SERVICE_FINDING
    device_count: int
    detail: str
    cve_count: int = 0
    tracking_id: str = field(init=False)

    def __post_init__(self) -> None:
        digest = hashlib.sha256(
            f"{self.vendor}|{self.kind}|{self.detail}".encode()
        ).hexdigest()[:6].upper()
        self.tracking_id = f"SIM-{digest}"


@dataclass
class DisclosureReport:
    """All findings grouped per vendor, with advisory rendering."""

    findings: List[Finding] = field(default_factory=list)

    def vendors(self) -> List[str]:
        return sorted({f.vendor for f in self.findings})

    def for_vendor(self, vendor: str) -> List[Finding]:
        return [f for f in self.findings if f.vendor == vendor]

    @property
    def tracking_ids(self) -> List[str]:
        return [f.tracking_id for f in self.findings]

    def render_advisory(self, vendor: str) -> str:
        lines = [
            f"Security advisory — {vendor}",
            "=" * (20 + len(vendor)),
            "",
            "Summary of issues identified during IPv6 periphery measurement:",
            "",
        ]
        for finding in self.for_vendor(vendor):
            lines.append(
                f"  [{finding.tracking_id}] {finding.kind}: "
                f"{finding.device_count} device(s) — {finding.detail}"
            )
            if finding.kind == LOOP_FINDING:
                lines.append(
                    "      remediation: install discard routes for delegated-"
                    "but-unassigned prefixes (RFC 7084 WPD-5)"
                )
            elif finding.cve_count:
                lines.append(
                    f"      {finding.cve_count} published CVE(s) apply to "
                    "the shipped software family; update and close the "
                    "service to WAN traffic by default (RFC 6092)"
                )
        lines.append("")
        return "\n".join(lines)

    def render_summary(self) -> str:
        lines = [
            "Responsible disclosure summary",
            "==============================",
            f"vendors notified : {len(self.vendors())}",
            f"tracking numbers : {len(self.tracking_ids)}",
            "",
        ]
        for vendor in self.vendors():
            findings = self.for_vendor(vendor)
            loops = sum(
                f.device_count for f in findings if f.kind == LOOP_FINDING
            )
            services = sum(
                f.device_count for f in findings if f.kind == SERVICE_FINDING
            )
            lines.append(
                f"  {vendor:20s} loop devices: {loops:6d}   "
                f"exposed-service devices: {services:6d}"
            )
        return "\n".join(lines)


def build_disclosure_report(
    identified: Iterable[IdentifiedDevice],
    loop_surveys: Mapping[str, LoopSurvey] = (),
    observations: Iterable[ServiceObservation] = (),
    cve_db: CveDatabase = DEFAULT_CVE_DB,
    min_devices: int = 1,
) -> DisclosureReport:
    """Join measurements into per-vendor findings.

    ``min_devices`` suppresses single-device noise when reporting at scale.
    """
    vendor_of: Dict[int, str] = {
        device.last_hop.value: device.vendor for device in identified
    }
    report = DisclosureReport()

    # Routing-loop findings: loop device counts per vendor.
    loop_counts: Dict[str, int] = {}
    if loop_surveys:
        for survey in loop_surveys.values():
            for record in survey.records:
                vendor = vendor_of.get(record.last_hop.value)
                if vendor is not None:
                    loop_counts[vendor] = loop_counts.get(vendor, 0) + 1
    for vendor, count in sorted(loop_counts.items()):
        if count < min_devices:
            continue
        report.findings.append(
            Finding(
                vendor=vendor,
                kind=LOOP_FINDING,
                device_count=count,
                detail="CPE forwards packets for delegated-but-unassigned "
                       "prefixes back upstream (amplifiable forwarding loop)",
            )
        )

    # Exposed-service findings: (vendor, service, software family) tuples.
    exposure: Dict[tuple, int] = {}
    for obs in observations:
        if not obs.alive:
            continue
        vendor = vendor_of.get(obs.target.value)
        if vendor is None:
            continue
        software = obs.software
        family = (
            family_of(software.name, software.version) if software else ""
        )
        key = (vendor, obs.service, software.name if software else "", family)
        exposure[key] = exposure.get(key, 0) + 1
    for (vendor, service, software_name, family), count in sorted(
        exposure.items()
    ):
        if count < min_devices:
            continue
        cves = cve_db.cve_count(software_name, family) if software_name else 0
        software_text = (
            f" running {software_name} {family}" if software_name else ""
        )
        report.findings.append(
            Finding(
                vendor=vendor,
                kind=SERVICE_FINDING,
                device_count=count,
                detail=f"{service} reachable from the IPv6 Internet"
                       f"{software_text}",
                cve_count=cves,
            )
        )
    return report
