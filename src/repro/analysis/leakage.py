"""Route-leak + hijack incident measurement through the result store.

The §VI attack surface gets worse when the control plane misbehaves: a
route leak drags the victim's traffic through an extra AS (shortening or
lengthening the data path), and a more-specific prefix hijack silently
blackholes a slice of the delegation set mid-scan.  This experiment runs
the full pipeline across one such incident on the
:func:`repro.bgp.build_leak_demo` world:

1. **Clean round**: a sharded campaign scans the victim edge AS's
   delegated window and commits snapshot ``round-clean``.
2. **Incident**: :func:`repro.bgp.compute_delta` reconverges the fabric
   under a :class:`~repro.bgp.RouteLeak` (the dual-homed leaker re-exports
   the victim's block from its regional to the tier-1) **and** a
   :class:`~repro.bgp.PrefixHijack` (the same AS originates the /44 slice
   of the victim window holding the most delegations).  Both deltas
   compile into one :class:`~repro.faults.FaultSchedule` covering the
   rescan.
3. **Incident round**: the identical campaign re-runs under that schedule
   and commits ``round-incident``.
4. **Diff**: because hop parity is preserved across the leak detour, the
   store diff must show *exactly* the hijacked delegation set as lost —
   the leak alone moves packets, not responders.
5. **Amplification**: one §VI-A loop-attack packet is measured against a
   loop-vulnerable delegation with and without the leak applied; the
   leaked path is two routers shorter, so each packet buys measurably
   more victim-link crossings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.bgp import PrefixHijack, RouteLeak, TableDelta, compute_delta
from repro.bgp.world import (
    LEAK_DEMO_LEAKER,
    LEAK_DEMO_R2,
    LEAK_DEMO_T1,
    InternetWorld,
)
from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign
from repro.faults import FaultInjector, FaultSchedule
from repro.loop.attack import AttackReport, run_loop_attack
from repro.net.addr import IPv6Prefix
from repro.net.spec import TopologySpec
from repro.store import ChurnReport, ResultStore, diff

ROUND_CLEAN = "round-clean"
ROUND_INCIDENT = "round-incident"

#: Forwarding routers between the vantage and the victim's access router
#: on the clean path (T1 core, both IX ports, T2 core, R2) and on the
#: leaked detour (T1 core, leaker, R2) — the paper's ``n``.
CLEAN_PATH_ROUTERS = 7
LEAKED_PATH_ROUTERS = 5


@dataclass
class LeakRun:
    """A two-round incident experiment plus its ground truth."""

    store_dir: str
    leak: RouteLeak
    hijack: PrefixHijack
    #: Victim delegations inside the hijacked /44 (the expected blast set).
    affected: List[str]
    report: ChurnReport
    clean_attack: AttackReport
    leaked_attack: AttackReport
    expected_lost: Set[int] = field(default_factory=set)
    expected_stable: Set[int] = field(default_factory=set)

    @property
    def exact(self) -> bool:
        """Does the store diff match the hijacked delegation set exactly?"""
        return (
            self.report.lost == self.expected_lost
            and self.report.stable == self.expected_stable
            and not self.report.new
        )

    @property
    def extra_crossings(self) -> int:
        """Victim-link crossings the leak adds per attack packet."""
        return (
            self.leaked_attack.link_crossings
            - self.clean_attack.link_crossings
        )

    def verify(self) -> None:
        """Assert churn == hijack blast set and the leak amplifies."""
        if self.report.lost != self.expected_lost:
            raise AssertionError(
                f"lost set mismatch: diff reported {len(self.report.lost)} "
                f"responder(s), the hijacked /44 predicts "
                f"{len(self.expected_lost)}"
            )
        if self.report.stable != self.expected_stable:
            raise AssertionError(
                f"stable set mismatch: diff reported "
                f"{len(self.report.stable)} responder(s); the leak detour "
                "must not move responders (hop parity is preserved)"
            )
        if self.report.new:
            raise AssertionError(
                f"a hijack cannot mint responders, yet diff reports "
                f"{len(self.report.new)} new"
            )
        if self.extra_crossings <= 0:
            raise AssertionError(
                "the leaked path must amplify the loop attack: "
                f"{self.leaked_attack.link_crossings} crossings leaked vs "
                f"{self.clean_attack.link_crossings} clean"
            )

    def render(self) -> str:
        return "\n".join([
            f"route-leak campaign on AS{self.leak.from_as}'s customer cone "
            f"(leaker AS{self.leak.leaker}, hijacked {self.hijack.prefix}, "
            f"{len(self.affected)} delegation(s) in the blast set):",
            self.report.render(),
            f"  ground truth: lost == hijacked-/44 responders: "
            f"{self.report.lost == self.expected_lost}; "
            f"stable == untouched responders: "
            f"{self.report.stable == self.expected_stable}",
            f"  loop amplification: {self.clean_attack.link_crossings} "
            f"crossings clean -> {self.leaked_attack.link_crossings} "
            f"during the leak (+{self.extra_crossings} per packet; "
            f"paths cross {CLEAN_PATH_ROUTERS} vs {LEAKED_PATH_ROUTERS} "
            f"routers)",
        ])


def pick_hijack_prefix(
    delegations: List[IPv6Prefix], window: IPv6Prefix
) -> Tuple[IPv6Prefix, List[IPv6Prefix]]:
    """The /44 slice of ``window`` holding the most delegations.

    Ties break toward the numerically lowest slice, so the choice is a
    pure function of the world's ground truth.
    """
    buckets: dict = {}
    for index in range(1 << (44 - window.length)):
        buckets[window.subprefix(index, 44)] = []
    for delegated in delegations:
        for candidate in buckets:
            if candidate.contains(delegated.address(0)):
                buckets[candidate].append(delegated)
                break
    best = max(
        sorted(buckets, key=lambda p: p.network),
        key=lambda p: len(buckets[p]),
    )
    return best, buckets[best]


def run_leak_experiment(
    store_dir: str,
    seed: int = 7,
    n_devices: int = 12,
    n_loops: int = 4,
    shards: int = 2,
    rate_pps: float = 25_000.0,
) -> LeakRun:
    """Run both rounds into ``store_dir`` and diff them (see module doc)."""
    spec = TopologySpec.leak_demo(
        seed=seed, n_devices=n_devices, n_loops=n_loops
    )
    built = spec.build()
    world: InternetWorld = built.handle  # type: ignore[assignment]
    edge = world.edges[0]
    config = ScanConfig(
        scan_range=ScanRange.parse(edge.scan_spec),
        seed=seed,
        rate_pps=rate_pps,
    )

    Campaign(
        spec, {"victim": config}, shards=shards, prebuilt=built,
        store_dir=store_dir, snapshot=ROUND_CLEAN,
    ).run()

    # The incident: the leaker pulls the victim block through itself AND
    # originates the busiest /44 slice of the victim's scan window.
    window = edge.block.subprefix(1, 40)
    hijack_prefix, affected = pick_hijack_prefix(edge.delegations, window)
    leak = RouteLeak(
        leaker=LEAK_DEMO_LEAKER, from_as=LEAK_DEMO_R2, to_as=LEAK_DEMO_T1,
        prefixes=(str(edge.block),),
    )
    hijack = PrefixHijack(
        hijacker=LEAK_DEMO_LEAKER, prefix=str(hijack_prefix)
    )
    leak_delta: TableDelta = compute_delta(world.fabric, leak)
    hijack_delta: TableDelta = compute_delta(world.fabric, hijack)

    window_end = 10.0 + config.scan_range.count / rate_pps  # covers the scan
    schedule = FaultSchedule(
        seed=seed,
        events=(
            leak_delta.to_fault_schedule(0.0, window_end).events
            + hijack_delta.to_fault_schedule(0.0, window_end).events
        ),
    )
    incident_config = dataclasses.replace(config, fault_schedule=schedule)

    Campaign(
        spec, {"victim": incident_config}, shards=shards,
        prebuilt=spec.build(), store_dir=store_dir, snapshot=ROUND_INCIDENT,
    ).run()

    store = ResultStore(store_dir)
    report = diff(store, ROUND_CLEAN, ROUND_INCIDENT)

    # Ground truth from the clean round: a responder is expected-lost iff
    # every target it answered for sits inside the hijacked /44.
    def _in_blast(target) -> bool:
        return hijack_prefix.contains(target)

    lost: Set[int] = set()
    stable: Set[int] = set()
    for row in store.iter_rows(store.snapshot(ROUND_CLEAN).segments):
        (lost if _in_blast(row.target) else stable).add(row.responder.value)
    lost -= stable  # answered for an untouched delegation too: still there

    # §VI-A amplification, with and without the leak detour.  The pristine
    # first build measures both: apply the leak delta alone (no hijack —
    # the loop target must stay routed), attack, revert.
    loop_delegated = edge.loop_delegations[0]
    cpe_index = edge.delegations.index(loop_delegated)
    cpe_name = f"as{edge.asn}-dev-0-{cpe_index}"
    attack_target = loop_delegated.subprefix(9, 64).address(0xBAD)
    clean_attack = run_loop_attack(
        world.network, world.vantage, attack_target,
        edge.access_router, cpe_name, hops_before_isp=CLEAN_PATH_ROUTERS,
    )
    injector = FaultInjector(
        world.network,
        leak_delta.to_fault_schedule(0.0, 1e9, seed=seed),
    )
    injector.arm()
    injector.sync(world.network.clock)
    try:
        leaked_attack = run_loop_attack(
            world.network, world.vantage, attack_target,
            edge.access_router, cpe_name,
            hops_before_isp=LEAKED_PATH_ROUTERS,
        )
    finally:
        injector.restore()

    return LeakRun(
        store_dir=store_dir,
        leak=leak,
        hijack=hijack,
        affected=[str(p) for p in affected],
        report=report,
        clean_attack=clean_attack,
        leaked_attack=leaked_attack,
        expected_lost=lost,
        expected_stable=stable,
    )
