"""Deterministic, seedable fault injection for the simulated Internet.

The paper's measurements ran for 48 hours against production ISPs, where
the substrate is hostile and non-stationary: links drop bursts of packets,
routers reboot and re-converge, and RFC 4443 §2.4(f) rate limiting silently
swallows the ICMPv6 errors the whole technique depends on.  This package
models that turbulence as data: a :class:`FaultSchedule` is a picklable
list of time-windowed :class:`FaultEvent`\\ s keyed off the network's
*virtual* clock, and a :class:`FaultInjector` arms it against a live
:class:`~repro.net.network.Network` — applying each fault when the clock
enters its window and reverting it when the clock leaves.

Determinism is the design constraint: every random draw the fault layer
makes comes from its own ``random.Random(schedule.seed)``, never from the
network's topology RNG, so the same seed + schedule reproduces the
identical packet-level outcome regardless of executor backend (asserted by
the cross-backend determinism suite).
"""

from repro.faults.schedule import (
    BLACKHOLE,
    FAULT_KINDS,
    LOSS_BURST,
    RATE_LIMIT,
    ROUTE_FLAP,
    ROUTE_SET,
    ROUTER_CRASH,
    FaultEvent,
    FaultSchedule,
    ScheduleError,
)
from repro.faults.injector import FaultError, FaultInjector

__all__ = [
    "BLACKHOLE",
    "FAULT_KINDS",
    "LOSS_BURST",
    "RATE_LIMIT",
    "ROUTE_FLAP",
    "ROUTE_SET",
    "ROUTER_CRASH",
    "FaultEvent",
    "FaultSchedule",
    "FaultError",
    "FaultInjector",
    "ScheduleError",
]
