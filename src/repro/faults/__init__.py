"""Deterministic, seedable fault injection for the simulated Internet.

The paper's measurements ran for 48 hours against production ISPs, where
the substrate is hostile and non-stationary: links drop bursts of packets,
routers reboot and re-converge, and RFC 4443 §2.4(f) rate limiting silently
swallows the ICMPv6 errors the whole technique depends on.  This package
models that turbulence as data: a :class:`FaultSchedule` is a picklable
list of time-windowed :class:`FaultEvent`\\ s keyed off the network's
*virtual* clock, and a :class:`FaultInjector` arms it against a live
:class:`~repro.net.network.Network` — applying each fault when the clock
enters its window and reverting it when the clock leaves.

The schedule carries two fault **domains** on one timeline.  Network-domain
events (loss bursts, router crashes, rate limiting, routing mutations) arm
against the simulated Internet via :class:`FaultInjector`; host-domain
events (``fs-error`` / ``fs-torn-write`` / ``fs-crash``) arm against the
*scanner host's* storage syscalls via :class:`HostFaultInjector`, which
wraps the store's :class:`~repro.store.oslayer.OsLayer` in a
:class:`FaultyOs` shim.  A mixed schedule is split automatically: each
injector arms only its own domain's events.

Determinism is the design constraint: every random draw the fault layer
makes comes from its own ``random.Random(schedule.seed)``, never from the
network's topology RNG (host faults draw no randomness at all), so the
same seed + schedule reproduces the identical packet-level — and
syscall-level — outcome regardless of executor backend (asserted by the
cross-backend determinism suite).
"""

from repro.faults.schedule import (
    BLACKHOLE,
    FAULT_KINDS,
    FS_CRASH,
    FS_ERROR,
    FS_TORN_WRITE,
    HOST_FAULT_KINDS,
    LOSS_BURST,
    NETWORK_FAULT_KINDS,
    RATE_LIMIT,
    ROUTE_FLAP,
    ROUTE_SET,
    ROUTER_CRASH,
    FaultEvent,
    FaultSchedule,
    ScheduleError,
)
from repro.faults.injector import FaultError, FaultInjector
from repro.faults.host import (
    FaultyOs,
    HostFaultInjector,
    SimulatedCrash,
)

__all__ = [
    "BLACKHOLE",
    "FAULT_KINDS",
    "FS_CRASH",
    "FS_ERROR",
    "FS_TORN_WRITE",
    "HOST_FAULT_KINDS",
    "LOSS_BURST",
    "NETWORK_FAULT_KINDS",
    "RATE_LIMIT",
    "ROUTE_FLAP",
    "ROUTE_SET",
    "ROUTER_CRASH",
    "FaultEvent",
    "FaultSchedule",
    "FaultError",
    "FaultInjector",
    "FaultyOs",
    "HostFaultInjector",
    "ScheduleError",
    "SimulatedCrash",
]
