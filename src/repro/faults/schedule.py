"""Fault schedules: picklable, JSON-loadable chaos timelines.

A schedule is a seed plus a list of :class:`FaultEvent` windows on the
*virtual* clock.  Six fault kinds cover the failure modes the paper's
live scans had to survive (§IV-C, §IV-E) plus the control-plane incidents
the BGP fabric compiles down to route operations:

============== =============================================================
``loss-burst``  Bursty packet loss, globally or on one directed link
                (``link: [src, dst]`` device names), at ``rate``.
``router-crash`` The device goes dark for the window (unregistered from the
                topology — routes through it blackhole, its flow-cache
                consumers invalidate via the generation stamp), then
                reboots with a cold neighbor cache.
``rate-limit``  The device's ICMPv6 error limiter is swapped for a tighter
                :class:`~repro.net.device.ErrorRateLimiter` (``rate``,
                ``burst``) for the window.
``blackhole``   The device null-routes ``prefix`` for the window (any
                pre-existing exact route is restored afterwards).
``route-flap``  The device withdraws its route for ``prefix`` for the
                window and re-announces it at the end — mid-scan churn
                with re-convergence.
``route-set``   The device's route for ``prefix`` is installed/re-homed to
                ``next_hop`` for the window; any pre-existing exact route
                is restored afterwards.  This is how
                :meth:`repro.bgp.scenarios.TableDelta.to_fault_schedule`
                diff-applies a reconverged RIB mid-scan.
============== =============================================================

Three further kinds cover the **host fault domain** — failures of the
scanner host's own storage, armed against the store's
:class:`~repro.store.oslayer.OsLayer` by a
:class:`~repro.faults.host.HostFaultInjector` instead of the network:

=================== ========================================================
``fs-error``         The durability syscall ``op`` (write/fsync/rename)
                     fails with errno ``err`` (EIO/ENOSPC) on files whose
                     path contains ``path`` (None = all).
``fs-torn-write``    Writes tear at byte ``offset``: bytes up to the offset
                     reach the file, the rest are lost, and the write
                     raises EIO — a disk going bad mid-segment.
``fs-crash``         The process "dies" at a rename boundary: ``op``
                     ``before-rename`` crashes with the tmp file written
                     but the rename not performed; ``after-rename`` crashes
                     with the rename durable but nothing after it.
=================== ========================================================

One schedule may mix network and host events: each injector arms only its
own domain (:attr:`FaultEvent.host_domain` is the discriminator).

Events carry only primitives (names, prefix strings, floats) so a schedule
pickles into :class:`~repro.core.scanner.ScanConfig` and ships to process
pool workers unchanged; JSON round-trips via :meth:`FaultSchedule.to_json`
/ :meth:`FaultSchedule.from_json` (the ``--fault-schedule`` CLI format).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

LOSS_BURST = "loss-burst"
ROUTER_CRASH = "router-crash"
RATE_LIMIT = "rate-limit"
BLACKHOLE = "blackhole"
ROUTE_FLAP = "route-flap"
ROUTE_SET = "route-set"

#: Host-domain kinds: faults under the *scanner host* rather than the
#: simulated Internet.  They arm against the store's
#: :class:`~repro.store.oslayer.OsLayer` (via
#: :class:`~repro.faults.host.HostFaultInjector`), not the network.
FS_ERROR = "fs-error"
FS_TORN_WRITE = "fs-torn-write"
FS_CRASH = "fs-crash"

NETWORK_FAULT_KINDS = (LOSS_BURST, ROUTER_CRASH, RATE_LIMIT, BLACKHOLE,
                       ROUTE_FLAP, ROUTE_SET)
HOST_FAULT_KINDS = (FS_ERROR, FS_TORN_WRITE, FS_CRASH)
FAULT_KINDS = NETWORK_FAULT_KINDS + HOST_FAULT_KINDS

#: ``fs-error`` operations / errnos and ``fs-crash`` phases.
FS_OPS = ("write", "fsync", "rename")
FS_ERRNOS = ("EIO", "ENOSPC")
FS_CRASH_OPS = ("before-rename", "after-rename")


class ScheduleError(ValueError):
    """A fault schedule is malformed (unknown kind, bad window, ...)."""


@dataclass(frozen=True)
class FaultEvent:
    """One time-windowed fault: active while ``start <= clock < end``."""

    kind: str
    start: float
    end: float
    device: Optional[str] = None
    #: Directed link as (src, dst) device names; None = every link.
    link: Optional[Tuple[str, str]] = None
    #: Prefix text (e.g. ``"2001:db8:1:60::/60"``); kept as a string so the
    #: event stays a pure-primitive, JSON-trivial, picklable value.
    prefix: Optional[str] = None
    rate: Optional[float] = None
    burst: Optional[float] = None
    #: Next-hop address text for ``route-set`` (primitive for pickling).
    next_hop: Optional[str] = None
    #: Host-domain fields.  ``op``: which durability syscall the fault
    #: intercepts (``fs-error``: write/fsync/rename; ``fs-crash``:
    #: before-rename/after-rename).  ``err``: the errno name raised by
    #: ``fs-error`` (EIO/ENOSPC).  ``path``: substring filter — the fault
    #: only fires on files whose path contains it (None = every file).
    #: ``offset``: the byte position an ``fs-torn-write`` tears at.
    op: Optional[str] = None
    err: Optional[str] = None
    path: Optional[str] = None
    offset: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ScheduleError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not (self.start >= 0.0 and self.end > self.start):
            raise ScheduleError(
                f"{self.kind}: window [{self.start}, {self.end}) must "
                "satisfy 0 <= start < end"
            )
        if self.kind == LOSS_BURST:
            if self.rate is None or not (0.0 < self.rate <= 1.0):
                raise ScheduleError(
                    f"{self.kind}: rate must be in (0, 1], got {self.rate!r}"
                )
            if self.link is not None and len(self.link) != 2:
                raise ScheduleError(
                    f"{self.kind}: link must be a [src, dst] device pair"
                )
        elif self.kind in (ROUTER_CRASH, RATE_LIMIT, BLACKHOLE, ROUTE_FLAP,
                           ROUTE_SET):
            if not self.device:
                raise ScheduleError(f"{self.kind}: device is required")
            if self.kind == RATE_LIMIT:
                if self.rate is None or self.rate < 0.0:
                    raise ScheduleError(
                        f"{self.kind}: rate (errors/second) is required"
                    )
            if self.kind in (BLACKHOLE, ROUTE_FLAP, ROUTE_SET) \
                    and not self.prefix:
                raise ScheduleError(f"{self.kind}: prefix is required")
            if self.kind == ROUTE_SET and not self.next_hop:
                raise ScheduleError(f"{self.kind}: next_hop is required")
        elif self.kind == FS_ERROR:
            if self.op not in FS_OPS:
                raise ScheduleError(
                    f"{self.kind}: op must be one of {', '.join(FS_OPS)}, "
                    f"got {self.op!r}"
                )
            if self.err not in FS_ERRNOS:
                raise ScheduleError(
                    f"{self.kind}: err must be one of "
                    f"{', '.join(FS_ERRNOS)}, got {self.err!r}"
                )
        elif self.kind == FS_TORN_WRITE:
            if self.offset is None or self.offset < 0:
                raise ScheduleError(
                    f"{self.kind}: offset (bytes, >= 0) is required, got "
                    f"{self.offset!r}"
                )
        elif self.kind == FS_CRASH:
            if self.op not in FS_CRASH_OPS:
                raise ScheduleError(
                    f"{self.kind}: op must be one of "
                    f"{', '.join(FS_CRASH_OPS)}, got {self.op!r}"
                )

    @property
    def host_domain(self) -> bool:
        """True for faults that arm against the OS layer, not the network."""
        return self.kind in HOST_FAULT_KINDS

    def resource(self) -> tuple:
        """The exclusive resource this event occupies (overlap checking)."""
        if self.kind == LOSS_BURST:
            return ("loss", self.link)
        if self.kind == ROUTER_CRASH:
            return ("device", self.device)
        if self.kind == RATE_LIMIT:
            return ("limiter", self.device)
        if self.kind == FS_ERROR:
            return ("host", self.op, self.path)
        if self.kind == FS_TORN_WRITE:
            # A torn write is a write-path fault: it may not share a window
            # with an fs-error on write for the same files.
            return ("host", "write", self.path)
        if self.kind == FS_CRASH:
            return ("host", self.op, self.path)
        return ("route", self.device, self.prefix)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind, "start": self.start, "end": self.end,
        }
        if self.device is not None:
            data["device"] = self.device
        if self.link is not None:
            data["link"] = list(self.link)
        if self.prefix is not None:
            data["prefix"] = self.prefix
        if self.rate is not None:
            data["rate"] = self.rate
        if self.burst is not None:
            data["burst"] = self.burst
        if self.next_hop is not None:
            data["next_hop"] = self.next_hop
        if self.op is not None:
            data["op"] = self.op
        if self.err is not None:
            data["err"] = self.err
        if self.path is not None:
            data["path"] = self.path
        if self.offset is not None:
            data["offset"] = self.offset
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ScheduleError(f"fault event must be an object, got {data!r}")
        known = {"kind", "start", "end", "device", "link", "prefix", "rate",
                 "burst", "next_hop", "op", "err", "path", "offset"}
        unknown = set(data) - known
        if unknown:
            raise ScheduleError(
                f"unknown fault event field(s): {', '.join(sorted(unknown))}"
            )
        try:
            link = data.get("link")
            event = cls(
                kind=str(data["kind"]),
                start=float(data["start"]),  # type: ignore[arg-type]
                end=float(data["end"]),  # type: ignore[arg-type]
                device=(
                    str(data["device"]) if data.get("device") is not None
                    else None
                ),
                link=(
                    (str(link[0]), str(link[1]))  # type: ignore[index]
                    if link is not None else None
                ),
                prefix=(
                    str(data["prefix"]) if data.get("prefix") is not None
                    else None
                ),
                rate=(
                    float(data["rate"])  # type: ignore[arg-type]
                    if data.get("rate") is not None else None
                ),
                burst=(
                    float(data["burst"])  # type: ignore[arg-type]
                    if data.get("burst") is not None else None
                ),
                next_hop=(
                    str(data["next_hop"])
                    if data.get("next_hop") is not None else None
                ),
                op=str(data["op"]) if data.get("op") is not None else None,
                err=str(data["err"]) if data.get("err") is not None else None,
                path=(
                    str(data["path"]) if data.get("path") is not None
                    else None
                ),
                offset=(
                    int(data["offset"])  # type: ignore[arg-type]
                    if data.get("offset") is not None else None
                ),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise ScheduleError(f"malformed fault event {data!r}: {exc}")
        event.validate()
        return event


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus an ordered tuple of fault-event windows."""

    events: Tuple[FaultEvent, ...] = ()
    #: Seed for the dedicated fault RNG (loss draws); independent of the
    #: topology and scan seeds so chaos reproduces bit-identically.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        self.validate()

    def validate(self) -> None:
        for event in self.events:
            event.validate()
        # Two events may not occupy the same resource at the same time —
        # apply/revert would otherwise have to stack, and "which fault wins"
        # would depend on schedule order rather than the schedule itself.
        by_resource: Dict[tuple, List[FaultEvent]] = {}
        for event in self.events:
            by_resource.setdefault(event.resource(), []).append(event)
        for resource, group in by_resource.items():
            group.sort(key=lambda e: e.start)
            for earlier, later in zip(group, group[1:]):
                if later.start < earlier.end:
                    raise ScheduleError(
                        f"overlapping {earlier.kind}/{later.kind} windows on "
                        f"{resource!r}: [{earlier.start}, {earlier.end}) and "
                        f"[{later.start}, {later.end})"
                    )

    def device_names(self) -> Iterable[str]:
        """Every device name the schedule references (for arming checks)."""
        for event in self.events:
            if event.device is not None:
                yield event.device
            if event.link is not None:
                yield from event.link

    def host_events(self) -> Tuple[FaultEvent, ...]:
        """The host-domain subset (what a HostFaultInjector arms)."""
        return tuple(e for e in self.events if e.host_domain)

    def network_events(self) -> Tuple[FaultEvent, ...]:
        """The network-domain subset (what a FaultInjector arms)."""
        return tuple(e for e in self.events if not e.host_domain)

    # -- (de)serialisation -------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ScheduleError(f"fault schedule is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ScheduleError("fault schedule must be a JSON object")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ScheduleError("'events' must be a list of fault events")
        try:
            seed = int(data.get("seed", 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ScheduleError(f"'seed' must be an integer, got "
                                f"{data.get('seed')!r}")
        return cls(
            events=tuple(FaultEvent.from_dict(item) for item in events),
            seed=seed,
        )

    @classmethod
    def from_file(cls, path: "str | object") -> "FaultSchedule":
        with open(path) as handle:  # type: ignore[arg-type]
            return cls.from_json(handle.read())

    def __len__(self) -> int:
        return len(self.events)
