"""Arms a :class:`~repro.faults.schedule.FaultSchedule` against a live
network.

The injector precomputes the schedule's apply/revert transitions as a
sorted timeline and exposes a single float, :attr:`next_transition`, that
the forwarding engine compares against the virtual clock once per
injection — the entire cost of a *disabled or idle* fault layer is that one
comparison (guarded by an ``is not None`` check), which is what keeps the
A/B overhead bench under its 2% budget.

Every fault effect reuses existing simulator machinery rather than adding
parallel code paths:

* loss bursts populate :attr:`Network.link_loss`, drawn against the
  dedicated fault RNG inside ``Network._enqueue``;
* router crashes go through :meth:`Network.unregister` /
  :meth:`Network.register`, so the topology **generation stamp** bump
  invalidates every flow-cache entry that resolved through the dark device
  — exactly the churn path prefix rotation already exercises;
* route flaps and blackhole windows mutate the device's routing table
  (bumping ``table.version``, the flow cache's other stamp half);
* rate-limit tightening swaps the device's
  :class:`~repro.net.device.ErrorRateLimiter` for the window and restores
  the original object — suppressed-error accounting keeps accumulating.

:meth:`restore` reverts everything still active (scan ended mid-window)
and detaches from the network, leaving it pristine for reuse.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import (
    BLACKHOLE,
    LOSS_BURST,
    RATE_LIMIT,
    ROUTE_FLAP,
    ROUTE_SET,
    ROUTER_CRASH,
    FaultEvent,
    FaultSchedule,
)
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import Device, ErrorRateLimiter
from repro.net.routing import Route


class FaultError(RuntimeError):
    """A schedule cannot be armed or applied against this network."""


class FaultInjector:
    """Drives one schedule against one network on the virtual clock."""

    def __init__(
        self,
        network,
        schedule: FaultSchedule,
        metrics=None,
        protected: Tuple[str, ...] = (),
    ) -> None:
        self.network = network
        self.schedule = schedule
        #: Dedicated chaos RNG: loss draws never touch the topology RNG.
        self.rng = random.Random(schedule.seed)
        if metrics is None:
            from repro.telemetry.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        #: Device names faults must not target (the scan vantage).
        self.protected = tuple(protected)
        #: Structured fault records (virtual-clock timestamps) for the
        #: worker event buffer / campaign EventLog.
        self.records: List[Dict[str, object]] = []
        #: Virtual time of the next apply/revert; +inf once exhausted.  The
        #: forwarding engine checks ``clock >= next_transition`` per inject.
        self.next_transition = math.inf
        # (time, phase, seq, action, event): reverts sort before applies at
        # the same instant so back-to-back windows hand over cleanly.
        # Host-domain events are not ours — they arm against the store's OS
        # layer via a HostFaultInjector; a mixed schedule is split here.
        timeline: List[Tuple[float, int, int, str, FaultEvent]] = []
        for seq, event in enumerate(schedule.events):
            if event.host_domain:
                continue
            timeline.append((event.start, 1, seq, "apply", event))
            timeline.append((event.end, 0, seq, "revert", event))
        self._timeline = sorted(timeline)
        self._cursor = 0
        self._devices: Dict[str, Device] = {}
        self._crashed: Dict[int, Device] = {}
        self._limiters: Dict[int, ErrorRateLimiter] = {}
        self._routes: Dict[int, Optional[Route]] = {}
        self._active: List[FaultEvent] = []
        self._armed = False
        self._drops_baseline = 0

    # -- lifecycle ---------------------------------------------------------

    def arm(self) -> None:
        """Attach to the network; resolve and vet every referenced device."""
        network = self.network
        if network.faults is not None and network.faults is not self:
            raise FaultError("another fault schedule is already armed")
        for name in self.schedule.device_names():
            device = network.devices.get(name)
            if device is None:
                raise FaultError(
                    f"fault schedule references unknown device {name!r}"
                )
            self._devices[name] = device
        for event in self.schedule.events:
            if event.kind == ROUTER_CRASH and event.device in self.protected:
                raise FaultError(
                    f"cannot crash protected device {event.device!r} "
                    "(the scan vantage must survive the campaign)"
                )
        self._drops_baseline = network.fault_drops
        network.faults = self
        network.fault_rng = self.rng
        self._armed = True
        if self._timeline:
            self.next_transition = self._timeline[0][0]

    def sync(self, clock: float) -> None:
        """Apply/revert every transition due at or before ``clock``."""
        timeline = self._timeline
        cursor = self._cursor
        while cursor < len(timeline) and timeline[cursor][0] <= clock:
            _t, _phase, _seq, action, event = timeline[cursor]
            cursor += 1
            if action == "apply":
                self._apply(event, clock)
            else:
                self._revert(event, clock, reason="window-end")
        self._cursor = cursor
        self.next_transition = (
            timeline[cursor][0] if cursor < len(timeline) else math.inf
        )

    def restore(self) -> None:
        """Revert anything still active and detach from the network."""
        if not self._armed:
            return
        clock = self.network.clock
        for event in list(reversed(self._active)):
            self._revert(event, clock, reason="scan-end")
        self.next_transition = math.inf
        dropped = self.network.fault_drops - self._drops_baseline
        if dropped:
            self.metrics.counter("fault_packets_lost").inc(dropped)
        if self.network.faults is self:
            self.network.faults = None
        self._armed = False

    # -- fault effects -----------------------------------------------------

    def _record(self, phase: str, event: FaultEvent, clock: float,
                **extra: object) -> None:
        record: Dict[str, object] = {
            "type": f"fault_{phase}",
            "kind": event.kind,
            "t_virtual": clock,
            "window": [event.start, event.end],
        }
        if event.device is not None:
            record["device"] = event.device
        if event.link is not None:
            record["link"] = list(event.link)
        if event.prefix is not None:
            record["prefix"] = event.prefix
        if event.rate is not None:
            record["rate"] = event.rate
        record.update(extra)
        self.records.append(record)
        self.metrics.counter("fault_events", kind=event.kind,
                             phase=phase).inc()

    def _apply(self, event: FaultEvent, clock: float) -> None:
        network = self.network
        kind = event.kind
        if kind == LOSS_BURST:
            network.link_loss[event.link] = event.rate
        elif kind == ROUTER_CRASH:
            device = self._devices[event.device]  # type: ignore[index]
            network.unregister(device)
            self._crashed[id(event)] = device
        elif kind == RATE_LIMIT:
            device = self._devices[event.device]  # type: ignore[index]
            self._limiters[id(event)] = device.error_limiter
            assert event.rate is not None
            device.error_limiter = ErrorRateLimiter(
                rate_per_second=event.rate,
                burst=event.burst if event.burst is not None else 1.0,
            )
        elif kind == BLACKHOLE:
            device = self._devices[event.device]  # type: ignore[index]
            prefix = IPv6Prefix.from_string(event.prefix)  # type: ignore[arg-type]
            self._routes[id(event)] = self._route_for(device, prefix)
            device.table.add_blackhole(prefix)
        elif kind == ROUTE_FLAP:
            device = self._devices[event.device]  # type: ignore[index]
            prefix = IPv6Prefix.from_string(event.prefix)  # type: ignore[arg-type]
            withdrawn = self._route_for(device, prefix)
            if withdrawn is None:
                raise FaultError(
                    f"route-flap: {event.device!r} has no route for "
                    f"{event.prefix} to withdraw"
                )
            self._routes[id(event)] = withdrawn
            device.table.remove(prefix)
        elif kind == ROUTE_SET:
            device = self._devices[event.device]  # type: ignore[index]
            prefix = IPv6Prefix.from_string(event.prefix)  # type: ignore[arg-type]
            self._routes[id(event)] = self._route_for(device, prefix)
            assert event.next_hop is not None
            device.table.add_next_hop(
                prefix, IPv6Addr.from_string(event.next_hop)
            )
        self._active.append(event)
        self._record("applied", event, clock)

    def _revert(self, event: FaultEvent, clock: float,
                reason: str = "window-end") -> None:
        network = self.network
        kind = event.kind
        if kind == LOSS_BURST:
            network.link_loss.pop(event.link, None)
        elif kind == ROUTER_CRASH:
            device = self._crashed.pop(id(event))
            network.register(device)
            # Reboot semantics: the device comes back with a cold neighbor
            # cache and re-converges through NDP as traffic returns.
            from repro.net.ndp import NeighborCache

            device.neighbor_cache = NeighborCache()
        elif kind == RATE_LIMIT:
            device = self._devices[event.device]  # type: ignore[index]
            device.error_limiter = self._limiters.pop(id(event))
        elif kind == BLACKHOLE:
            device = self._devices[event.device]  # type: ignore[index]
            prefix = IPv6Prefix.from_string(event.prefix)  # type: ignore[arg-type]
            device.table.remove(prefix)
            saved = self._routes.pop(id(event))
            if saved is not None:
                device.table.add(saved)
        elif kind == ROUTE_FLAP:
            device = self._devices[event.device]  # type: ignore[index]
            saved = self._routes.pop(id(event))
            assert saved is not None
            device.table.add(saved)
        elif kind == ROUTE_SET:
            device = self._devices[event.device]  # type: ignore[index]
            prefix = IPv6Prefix.from_string(event.prefix)  # type: ignore[arg-type]
            device.table.remove(prefix)
            saved = self._routes.pop(id(event))
            if saved is not None:
                device.table.add(saved)
        self._active.remove(event)
        self._record("reverted", event, clock, reason=reason)

    @staticmethod
    def _route_for(device: Device, prefix: IPv6Prefix) -> Optional[Route]:
        """The device's exact-prefix route, if one is installed."""
        for route in device.table.routes():
            if (
                route.prefix.network == prefix.network
                and route.prefix.length == prefix.length
            ):
                return route
        return None
