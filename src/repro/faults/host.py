"""The host fault domain: storage failures under the scanner itself.

PR 4's :class:`~repro.faults.injector.FaultInjector` shakes the simulated
Internet; this module shakes the *host* — the disk under the result store
and the checkpoint directory, which real campaigns lose to far more often
than to packet loss (disk-full mid-segment, torn writes on power loss,
operator kill -9 between a seal and the manifest commit).

:class:`HostFaultInjector` mirrors the network injector's discipline
exactly: it arms a :class:`~repro.faults.schedule.FaultSchedule`'s
host-domain events (``fs-error`` / ``fs-torn-write`` / ``fs-crash``) as a
sorted apply/revert timeline on the **virtual clock**, exposes
``next_transition``, journals every transition into :attr:`records`
(``fault_applied`` / ``fault_reverted`` — the same record shape the
campaign EventLog ingests), and reverts everything on :meth:`restore`.
The difference is the attachment point: instead of a ``Network`` it
produces a :class:`FaultyOs` — an :class:`~repro.store.oslayer.OsLayer`
shim the store's writers call — so scheduled windows intercept exactly
the four durability syscalls the crash-safety claims rest on.

Determinism: host faults draw no randomness at all.  Whether an operation
fails is a pure function of (virtual clock, op, path, bytes-written-so-
far), so the same schedule over the same scan reproduces the identical
failure — and the identical recovery — on every backend.

``fs-crash`` raises :class:`SimulatedCrash`, a ``BaseException`` like
``KeyboardInterrupt``: nothing on the worker path may swallow it, so it
propagates out exactly as far as a real process death would, leaving only
what was already durable.  (The kill-anywhere harness in
:mod:`repro.engine.killtest` goes one step further and uses real SIGKILL;
this in-process variant is what makes the crash *windows* unit-testable.)
"""

from __future__ import annotations

import errno
import math
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Tuple

from repro.faults.schedule import (
    FS_CRASH,
    FS_ERROR,
    FS_TORN_WRITE,
    FaultEvent,
    FaultSchedule,
)
from repro.store.oslayer import OsLayer, get_default_os

_ERRNOS = {"EIO": errno.EIO, "ENOSPC": errno.ENOSPC}


class SimulatedCrash(BaseException):
    """An injected ``fs-crash``: the process is considered dead here.

    A ``BaseException`` deliberately (like
    :class:`~repro.engine.worker.WorkerInterrupted`): executor retry
    handling catches ``Exception`` only, so a simulated crash aborts the
    campaign the way a real SIGKILL would instead of being politely
    retried.
    """


def _os_error(err: str, path: str, op: str) -> OSError:
    code = _ERRNOS[err]
    return OSError(code, f"injected {err} on {op}", path)


class FaultyOs(OsLayer):
    """The shim an armed :class:`HostFaultInjector` hands to the store."""

    def __init__(self, injector: "HostFaultInjector", base: OsLayer) -> None:
        self.injector = injector
        self.base = base

    def write(self, handle: IO[bytes], data: bytes) -> None:
        event = self.injector.match("write", handle.name)
        if event is None:
            self.base.write(handle, data)
            return
        if event.kind == FS_TORN_WRITE:
            self.injector.tear(event, handle, data, self.base)
            return
        self.injector.fail(event, "write", handle.name)

    def fsync(self, handle: IO) -> None:
        event = self.injector.match("fsync", handle.name)
        if event is not None:
            self.injector.fail(event, "fsync", handle.name)
        self.base.fsync(handle)

    def replace(self, src: Path, dst: Path) -> None:
        crash = self.injector.match("before-rename", str(dst))
        if crash is not None:
            self.injector.crash(crash, "before-rename", str(dst))
        event = self.injector.match("rename", str(dst))
        if event is not None:
            self.injector.fail(event, "rename", str(dst))
        self.base.replace(src, dst)
        crash = self.injector.match("after-rename", str(dst))
        if crash is not None:
            self.injector.crash(crash, "after-rename", str(dst))

    def fsync_dir(self, path: Path) -> None:
        # Directory fsync is the fsync op's other face: an fs-error on
        # fsync whose path filter matches the directory degrades rename
        # durability — the satellite the store must *report*, not hide.
        event = self.injector.match("fsync", str(path))
        if event is not None:
            self.injector.fail(event, "fsync", str(path))
        self.base.fsync_dir(path)


class HostFaultInjector:
    """Drives a schedule's host-domain events against the OS layer.

    ``clock`` is a zero-argument callable returning the current *virtual*
    time — in a worker, ``lambda: network.clock`` — so host windows share
    the timeline (and the journal timestamps) of the network faults they
    ride alongside.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        clock: Callable[[], float],
        base: Optional[OsLayer] = None,
        metrics=None,
    ) -> None:
        self.schedule = schedule
        self.clock = clock
        self.base = base if base is not None else get_default_os()
        if metrics is None:
            from repro.telemetry.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        #: Structured journal records (same shape as the network injector's)
        #: for the worker event buffer / campaign EventLog.
        self.records: List[Dict[str, object]] = []
        #: Virtual time of the next apply/revert; +inf once exhausted.
        self.next_transition = math.inf
        timeline: List[Tuple[float, int, int, str, FaultEvent]] = []
        for seq, event in enumerate(schedule.host_events()):
            timeline.append((event.start, 1, seq, "apply", event))
            timeline.append((event.end, 0, seq, "revert", event))
        self._timeline = sorted(timeline)
        self._cursor = 0
        self._active: List[FaultEvent] = []
        #: Per-torn-write-event bytes already allowed through (the tear
        #: point is cumulative over the window, not per call).
        self._torn: Dict[int, int] = {}
        if self._timeline:
            self.next_transition = self._timeline[0][0]

    def os_layer(self) -> FaultyOs:
        """The shim to install under a store/segment/checkpoint writer."""
        return FaultyOs(self, self.base)

    # -- timeline ----------------------------------------------------------

    def sync(self, clock: float) -> None:
        """Apply/revert every transition due at or before ``clock``."""
        timeline = self._timeline
        cursor = self._cursor
        while cursor < len(timeline) and timeline[cursor][0] <= clock:
            _t, _phase, _seq, action, event = timeline[cursor]
            cursor += 1
            if action == "apply":
                self._active.append(event)
                self._record("applied", event, clock)
            else:
                self._active.remove(event)
                self._torn.pop(id(event), None)
                self._record("reverted", event, clock, reason="window-end")
        self._cursor = cursor
        self.next_transition = (
            timeline[cursor][0] if cursor < len(timeline) else math.inf
        )

    def restore(self) -> None:
        """Revert anything still active (scan ended mid-window)."""
        clock = self.clock()
        for event in list(reversed(self._active)):
            self._active.remove(event)
            self._torn.pop(id(event), None)
            self._record("reverted", event, clock, reason="scan-end")
        self.next_transition = math.inf

    # -- op hooks ----------------------------------------------------------

    def match(self, op: str, path: str) -> Optional[FaultEvent]:
        """The first active event intercepting ``op`` on ``path``, if any."""
        clock = self.clock()
        if clock >= self.next_transition:
            self.sync(clock)
        if not self._active:
            return None
        for event in self._active:
            if event.path is not None and event.path not in path:
                continue
            if event.kind == FS_ERROR and event.op == op:
                return event
            if event.kind == FS_TORN_WRITE and op == "write":
                return event
            if event.kind == FS_CRASH and event.op == op:
                return event
        return None

    def fail(self, event: FaultEvent, op: str, path: str) -> None:
        """Inject an ``fs-error``: journal it and raise its errno."""
        assert event.err is not None
        self._injected(event, op, path, err=event.err)
        raise _os_error(event.err, path, op)

    def tear(self, event: FaultEvent, handle: IO[bytes], data: bytes,
             base: OsLayer) -> None:
        """Inject an ``fs-torn-write``: bytes up to the tear point land,
        the rest vanish, and the crossing (and every later) write errors."""
        assert event.offset is not None
        passed = self._torn.get(id(event), 0)
        remaining = event.offset - passed
        if remaining > 0:
            chunk = data[: min(remaining, len(data))]
            base.write(handle, chunk)
            self._torn[id(event)] = passed + len(chunk)
            if len(chunk) == len(data):
                return  # still below the tear point: the write succeeds
        self._injected(event, "write", handle.name, torn_at=event.offset)
        raise OSError(
            errno.EIO,
            f"injected torn write at byte {event.offset}",
            handle.name,
        )

    def crash(self, event: FaultEvent, op: str, path: str) -> None:
        """Inject an ``fs-crash``: journal it and die (by BaseException)."""
        self._injected(event, op, path)
        raise SimulatedCrash(f"injected crash {op} of {path}")

    # -- journal -----------------------------------------------------------

    def _record(self, phase: str, event: FaultEvent, clock: float,
                **extra: object) -> None:
        record: Dict[str, object] = {
            "type": f"fault_{phase}",
            "kind": event.kind,
            "t_virtual": clock,
            "window": [event.start, event.end],
        }
        if event.op is not None:
            record["op"] = event.op
        if event.path is not None:
            record["path"] = event.path
        record.update(extra)
        self.records.append(record)
        self.metrics.counter("fault_events", kind=event.kind,
                             phase=phase).inc()

    def _injected(self, event: FaultEvent, op: str, path: str,
                  **extra: object) -> None:
        record: Dict[str, object] = {
            "type": "host_fault_injected",
            "kind": event.kind,
            "op": op,
            "file": path,
            "t_virtual": self.clock(),
            "window": [event.start, event.end],
        }
        record.update(extra)
        self.records.append(record)
        self.metrics.counter("host_faults_injected", kind=event.kind,
                             op=op).inc()
