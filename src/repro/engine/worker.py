"""The shard execution entry point — runs in-process, in a thread, or in a
pool worker.

:func:`execute_job` is a module-level function taking one picklable
:class:`~repro.engine.planner.ShardJob`, so a
``concurrent.futures.ProcessPoolExecutor`` can ship it across process
boundaries.  Each invocation rebuilds the simulator topology from the job's
:class:`~repro.net.spec.TopologySpec` (the live ``Network`` is not
picklable), rebuilds the probe from its :class:`ProbeSpec`, fast-forwards
past any checkpointed progress via ``ScanConfig.skip``, runs the scanner,
and persists the shard's final (or, periodically, partial) state.
"""

from __future__ import annotations

import dataclasses
import os
import signal
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.scanner import Scanner, ScanResult
from repro.engine.checkpoint import DONE, PARTIAL, CheckpointStore, ShardState
from repro.engine.planner import ShardJob
from repro.net.spec import BuiltTopology
from repro.telemetry.events import WorkerEventBuffer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import ProbeTracer


class WorkerInterrupted(KeyboardInterrupt):
    """Injected worker death (failure injection / kill simulation).

    Subclasses :class:`KeyboardInterrupt` deliberately: like a real ^C or
    SIGKILL it must *not* be swallowed by the executors' per-shard
    ``except Exception`` retry handling — it aborts the whole campaign,
    leaving only what the checkpoint store already persisted.
    """


@dataclass
class ShardOutcome:
    """What one shard execution (or checkpoint skip) produced."""

    job: ShardJob
    result: ScanResult
    #: Probes actually sent by this invocation — 0 when the shard was
    #: restored from a completed checkpoint (the resume guarantee).
    sent_this_run: int
    from_checkpoint: bool = False
    resumed_at: int = 0  # stream position the scan fast-forwarded to
    attempts: int = 1
    worker: str = ""
    #: Exported :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot
    #: (picklable dict); None when the shard collected no metrics.
    metrics: Optional[Dict[str, object]] = None
    #: Sampled probe-lifecycle traces (picklable dicts).
    traces: List[Dict[str, object]] = field(default_factory=list)
    #: Worker-local structured events (checkpoint writes, restores, …)
    #: for the campaign's EventLog to ingest.
    events: List[Dict[str, object]] = field(default_factory=list)
    #: Exported shard-local time series (picklable
    #: :meth:`~repro.telemetry.timeseries.SeriesSet.to_dict`); None when
    #: the job's config has no ``timeseries_interval``.
    timeseries: Optional[Dict[str, object]] = None
    #: Sealed :mod:`repro.store` segment metadata for this shard's rows
    #: (picklable dict from ``SegmentWriter.seal``); None when the job has
    #: no ``store_dir``.  The campaign parent commits these — workers never
    #: touch the store manifest, so there is nothing to race on.
    segment: Optional[Dict[str, object]] = None

    @property
    def label(self) -> str:
        return self.job.label


def _segment_writer(job: ShardJob, os_layer=None):
    """A :class:`~repro.store.segment.SegmentWriter` for this shard's rows.

    Each shard writes its own uniquely named file under the store's segment
    directory, so parallel workers never contend; a retried attempt seals
    over the same final name (atomic replace — last seal wins).  Only the
    campaign parent commits names into the manifest.
    """
    from repro.store.segment import SegmentWriter
    from repro.store.store import ResultStore

    assert job.store_dir is not None
    name = ResultStore.segment_name(f"{job.store_prefix}{job.job_id}")
    path = os.path.join(job.store_dir, ResultStore.SEGMENT_DIR, name)
    return SegmentWriter(path, os_layer=os_layer)


def _combined(prior: Optional[ScanResult], current: ScanResult) -> ScanResult:
    """Merge checkpointed partial results with the current attempt's."""
    if prior is None:
        return current
    merged = ScanResult(range=current.range)
    merged.merge(prior)
    merged.merge(current)
    return merged


def execute_job(
    job: ShardJob, prebuilt: Optional[BuiltTopology] = None
) -> ShardOutcome:
    """Run one shard to completion, honouring any checkpointed progress."""
    buffer = WorkerEventBuffer()
    store = (
        CheckpointStore(job.checkpoint_dir, on_event=buffer.record)
        if job.checkpoint_dir
        else None
    )
    prior = store.load_shard(job.job_id) if store is not None else None

    if prior is not None and prior.status == DONE:
        buffer.emit(
            "shard_restored", job_id=job.job_id, position=prior.position,
            worker=f"pid:{os.getpid()}",
        )
        segment_meta: Optional[Dict[str, object]] = None
        if job.store_dir:
            # A restored shard still contributes its rows to this run's
            # snapshot: re-seal them as a fresh segment for the parent to
            # commit (the checkpoint, not the store, is the durable copy).
            writer = _segment_writer(job)
            writer.append_many(prior.result.results)
            segment_meta = writer.seal()
            buffer.emit(
                "segment_sealed", job_id=job.job_id,
                segment=segment_meta["name"], rows=segment_meta["rows"],
                from_checkpoint=True,
            )
        return ShardOutcome(
            job=job,
            result=prior.result,
            sent_this_run=0,
            from_checkpoint=True,
            resumed_at=prior.position,
            worker=f"pid:{os.getpid()}",
            events=buffer.records,
            segment=segment_meta,
        )

    built = prebuilt if prebuilt is not None else job.topology.build()
    probe = job.probe.build()
    skip = prior.position if prior is not None else 0
    config = dataclasses.replace(job.config, skip=skip)
    registry = MetricsRegistry() if config.collect_metrics else None
    tracer = ProbeTracer.from_spec(config.trace)
    # Host fault domain: a schedule with fs-error / fs-torn-write /
    # fs-crash events arms against this worker's durability syscalls — the
    # checkpoint store and segment writer below go through the shim, keyed
    # to the same virtual clock the network faults ride.
    host_injector = None
    host_os = None
    if config.fault_schedule is not None and (
        config.fault_schedule.host_events()
    ):
        from repro.faults.host import HostFaultInjector

        host_injector = HostFaultInjector(
            config.fault_schedule,
            clock=lambda: built.network.clock,
            metrics=registry,
        )
        host_os = host_injector.os_layer()
        if store is not None:
            store.os = host_os
    sink = None
    if job.store_dir and store is None:
        # No checkpointing: stream rows straight into the shard's segment so
        # peak resident rows stay bounded by the writer's block size.  With
        # checkpointing, rows must stay on the result for partial-state
        # persistence; the segment is written once at the end instead.
        from repro.store.sink import SegmentSink

        sink = SegmentSink(_segment_writer(job, host_os))
    scanner = Scanner(built.network, built.vantage, probe, config,
                      metrics=registry, tracer=tracer, sink=sink)
    prior_result = prior.result if prior is not None else None
    if skip:
        buffer.emit("shard_resumed", job_id=job.job_id, position=skip)

    def _write(status: str) -> None:
        assert store is not None and scanner.result is not None
        snapshot = _combined(prior_result, scanner.result)
        store.write_shard(
            ShardState(
                job_id=job.job_id,
                status=status,
                shard=config.shard,
                shards=config.shards,
                position=scanner.position,
                result=snapshot,
            )
        )

    if (
        store is not None
        or job.interrupt_after is not None
        or job.kill_after is not None
    ):
        last_checkpoint = [0]

        def on_progress(s: Scanner) -> None:
            assert s.result is not None
            sent = s.result.stats.sent
            if (
                job.kill_after is not None
                and skip == 0  # only the first attempt dies; resumes survive
                and sent >= job.kill_after
            ):
                if store is not None:
                    _write(PARTIAL)
                # A real, unhandled process death — no exception, no cleanup;
                # the checkpoint just written is all that survives.
                os.kill(os.getpid(), signal.SIGKILL)
            if (
                job.interrupt_after is not None
                and sent >= job.interrupt_after
            ):
                if store is not None:
                    _write(PARTIAL)
                raise WorkerInterrupted(
                    f"{job.job_id}: injected worker death after {sent} probes"
                )
            if (
                store is not None
                and job.checkpoint_every
                and sent - last_checkpoint[0] >= job.checkpoint_every
            ):
                last_checkpoint[0] = sent
                _write(PARTIAL)

        scanner.on_progress = on_progress

    try:
        result = scanner.run_batched() if config.batched else scanner.run()
    except BaseException:
        if sink is not None:
            sink.writer.abort()  # leave only a .tmp, never a half-segment
        raise
    if scanner.fault_injector is not None:
        # Fault apply/revert records ride the worker's event stream home so
        # the campaign's EventLog journals the chaos timeline alongside
        # checkpoint writes and shard lifecycle events.
        for fault_record in scanner.fault_injector.records:
            buffer.record(fault_record)
    merged = _combined(prior_result, result)
    if store is not None:
        store.write_shard(
            ShardState(
                job_id=job.job_id,
                status=DONE,
                shard=config.shard,
                shards=config.shards,
                position=scanner.position,
                result=merged,
            )
        )
    segment_meta: Optional[Dict[str, object]] = None
    if sink is not None:
        sink.close()
        segment_meta = sink.meta
    elif job.store_dir:
        writer = _segment_writer(job, host_os)
        writer.append_many(merged.results)
        segment_meta = writer.seal()
    if segment_meta is not None:
        buffer.emit(
            "segment_sealed", job_id=job.job_id,
            segment=segment_meta["name"], rows=segment_meta["rows"],
        )
    if host_injector is not None:
        # Revert any still-open windows and ship the host-fault journal
        # home alongside the network fault records.  Faults stayed live
        # through the final checkpoint write and segment seal above —
        # those are exactly the writes worth failing.
        host_injector.restore()
        for fault_record in host_injector.records:
            buffer.record(fault_record)
    return ShardOutcome(
        job=job,
        result=merged,
        sent_this_run=result.stats.sent,
        resumed_at=skip,
        worker=f"pid:{os.getpid()}",
        metrics=registry.to_dict() if registry is not None else None,
        traces=tracer.to_dicts(),
        events=buffer.records,
        timeseries=(
            scanner.sampler.to_dict() if scanner.sampler is not None else None
        ),
        segment=segment_meta,
    )
