"""Executor backends: serial, thread pool, and process pool.

All three run the same entry point (:func:`repro.engine.worker.execute_job`)
over a batch of shard jobs and return ``(job, outcome-or-exception)`` pairs
in submission order, so the campaign's retry logic is backend-agnostic:

* **serial** — one shard after another in the calling process.  The only
  backend that can *reuse* a pre-built live topology (``prebuilt``), which
  is how ``reproduce_all`` routes its sweep through the engine without
  rebuilding the simulated Internet per range;
* **thread** — a ``ThreadPoolExecutor``.  Each shard rebuilds its own
  topology: a ``Network`` is single-threaded state (clock, RNG), so workers
  must not share one.  Python threads don't parallelise the CPU-bound scan
  loop (the GIL), but this backend exercises the full fan-out/merge path
  cheaply and overlaps any blocking I/O;
* **process** — a ``ProcessPoolExecutor``; true parallelism.  Jobs are
  pickled, workers rebuild the topology from the job's ``TopologySpec``.
  Fault hooks are supported here too as long as they pickle — a module-level
  function or a frozen dataclass with ``__call__`` ships fine; a lambda or
  closure is rejected up front with a clear error.

The pooled backends optionally run under a **watchdog**: with a
``shard_timeout``, any shard still running past its deadline is abandoned —
its future cancelled, its worker process killed if needed — and reported as
a :class:`WatchdogTimeout`, an ordinary per-job failure the campaign's
retry machinery requeues like any other worker error.  A fresh pool is
created per ``run_jobs`` call, so a wave that lost workers to the watchdog
(or to a SIGKILL) starts the next wave with a healthy pool.

Ordinary exceptions are captured per job (the campaign retries them);
``KeyboardInterrupt`` — including the injected
:class:`~repro.engine.worker.WorkerInterrupted` — propagates immediately,
aborting the batch the way a real ^C would.
"""

from __future__ import annotations

import concurrent.futures
import pickle
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.engine.planner import ShardJob
from repro.engine.worker import ShardOutcome, execute_job
from repro.net.spec import BuiltTopology

JobReturn = Tuple[ShardJob, Union[ShardOutcome, Exception]]

#: Test hook signature: called with the job just before it executes; raising
#: simulates a worker failing to start (the campaign's retry path).
FaultHook = Callable[[ShardJob], None]


class WatchdogTimeout(RuntimeError):
    """A shard overran its ``shard_timeout`` and was abandoned.

    Delivered as the per-job outcome (never raised out of ``run_jobs``), so
    the campaign treats a hung worker exactly like a crashed one: retry up
    to ``max_retries``, then fail the shard.
    """


def _hooked_execute(hook: FaultHook, job: ShardJob) -> ShardOutcome:
    """Run a fault hook then the job — module-level so process pools can
    pickle it (a bound method of a backend instance would drag the pool
    itself across the process boundary)."""
    hook(job)
    return execute_job(job)


def _await_with_watchdog(
    jobs: Sequence[ShardJob],
    futures: Sequence["concurrent.futures.Future"],
    timeout: Optional[float],
) -> Tuple[List[JobReturn], bool]:
    """Collect per-job outcomes, abandoning stragglers past ``timeout``.

    Returns ``(returns, timed_out)``; the caller decides how violently to
    tear down its pool when the watchdog fired.  ``KeyboardInterrupt`` from
    a future (injected worker death on the serial/thread path) propagates.
    """
    timed_out = False
    if timeout is not None:
        done, not_done = concurrent.futures.wait(futures, timeout=timeout)
        timed_out = bool(not_done)
        for future in not_done:
            future.cancel()
    returns: List[JobReturn] = []
    for job, future in zip(jobs, futures):
        if timeout is not None and not future.done():
            returns.append(
                (
                    job,
                    WatchdogTimeout(
                        f"shard {job.job_id} exceeded its {timeout:g}s "
                        "deadline; worker abandoned"
                    ),
                )
            )
            continue
        try:
            returns.append((job, future.result()))
        except concurrent.futures.CancelledError:
            returns.append(
                (
                    job,
                    WatchdogTimeout(
                        f"shard {job.job_id} cancelled before start "
                        f"({timeout:g}s batch deadline elapsed)"
                    ),
                )
            )
        except Exception as exc:  # noqa: BLE001 - retried by the campaign
            returns.append((job, exc))
    return returns, timed_out


class Executor(ABC):
    """Runs a batch of shard jobs; never raises for per-job Exceptions."""

    name = "?"

    @abstractmethod
    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        """Execute every job; outcomes/errors in submission order."""

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class SerialExecutor(Executor):
    """In-process, one shard at a time."""

    name = "serial"

    def __init__(
        self,
        prebuilt: Optional[BuiltTopology] = None,
        fault_hook: Optional[FaultHook] = None,
    ) -> None:
        self.prebuilt = prebuilt
        self.fault_hook = fault_hook

    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        returns: List[JobReturn] = []
        for job in jobs:
            try:
                if self.fault_hook is not None:
                    self.fault_hook(job)
                returns.append((job, execute_job(job, prebuilt=self.prebuilt)))
            except Exception as exc:  # noqa: BLE001 - retried by the campaign
                returns.append((job, exc))
        return returns


class ThreadPoolBackend(Executor):
    """Concurrent shards in threads; each rebuilds its own topology."""

    name = "thread"

    def __init__(
        self,
        workers: Optional[int] = None,
        fault_hook: Optional[FaultHook] = None,
        shard_timeout: Optional[float] = None,
    ) -> None:
        self.workers = workers
        self.fault_hook = fault_hook
        self.shard_timeout = shard_timeout

    def _task(self, job: ShardJob) -> ShardOutcome:
        if self.fault_hook is not None:
            self.fault_hook(job)
        return execute_job(job)

    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )
        try:
            futures = [pool.submit(self._task, job) for job in jobs]
            returns, timed_out = _await_with_watchdog(
                jobs, futures, self.shard_timeout
            )
        finally:
            # Threads can't be killed: with a watchdog armed, never join —
            # a hung thread would hold shutdown hostage; the next wave gets
            # a fresh pool.  Without one, join as before.
            pool.shutdown(wait=self.shard_timeout is None)
        return returns


class ProcessPoolBackend(Executor):
    """Concurrent shards in worker processes (true parallelism)."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        fault_hook: Optional[FaultHook] = None,
        shard_timeout: Optional[float] = None,
    ) -> None:
        self.workers = workers
        self.fault_hook = fault_hook
        self.shard_timeout = shard_timeout

    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        timed_out = True  # assume the worst if collection itself blows up
        try:
            if self.fault_hook is not None:
                futures = [
                    pool.submit(_hooked_execute, self.fault_hook, job)
                    for job in jobs
                ]
            else:
                futures = [pool.submit(execute_job, job) for job in jobs]
            returns, timed_out = _await_with_watchdog(
                jobs, futures, self.shard_timeout
            )
        finally:
            if timed_out:
                # Hung workers hold the pool's shutdown hostage; kill them.
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.kill()
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        return returns


def make_executor(
    name: str,
    workers: Optional[int] = None,
    prebuilt: Optional[BuiltTopology] = None,
    fault_hook: Optional[FaultHook] = None,
    shard_timeout: Optional[float] = None,
) -> Executor:
    """Build an executor backend by name (``serial``/``thread``/``process``)."""
    if name == "serial":
        if shard_timeout is not None:
            raise ValueError(
                "the serial backend runs shards on the calling thread and "
                "cannot watchdog itself; use thread/process for shard_timeout"
            )
        return SerialExecutor(prebuilt=prebuilt, fault_hook=fault_hook)
    if prebuilt is not None:
        raise ValueError(
            f"a pre-built topology cannot be shared with the {name!r} "
            "backend; workers rebuild from the TopologySpec"
        )
    if name == "thread":
        return ThreadPoolBackend(
            workers=workers, fault_hook=fault_hook, shard_timeout=shard_timeout
        )
    if name == "process":
        if fault_hook is not None:
            try:
                pickle.dumps(fault_hook)
            except Exception as exc:
                raise ValueError(
                    f"the process backend ships fault hooks to pool workers "
                    f"and this one does not pickle ({exc}); use a "
                    "module-level function or a picklable callable object, "
                    "or the serial/thread backend"
                ) from exc
        return ProcessPoolBackend(
            workers=workers, fault_hook=fault_hook, shard_timeout=shard_timeout
        )
    raise ValueError(f"unknown executor backend {name!r}")
