"""Executor backends: serial, thread pool, and process pool.

All three run the same entry point (:func:`repro.engine.worker.execute_job`)
over a batch of shard jobs and return ``(job, outcome-or-exception)`` pairs
in submission order, so the campaign's retry logic is backend-agnostic:

* **serial** — one shard after another in the calling process.  The only
  backend that can *reuse* a pre-built live topology (``prebuilt``), which
  is how ``reproduce_all`` routes its sweep through the engine without
  rebuilding the simulated Internet per range;
* **thread** — a ``ThreadPoolExecutor``.  Each shard rebuilds its own
  topology: a ``Network`` is single-threaded state (clock, RNG), so workers
  must not share one.  Python threads don't parallelise the CPU-bound scan
  loop (the GIL), but this backend exercises the full fan-out/merge path
  cheaply and overlaps any blocking I/O;
* **process** — a ``ProcessPoolExecutor``; true parallelism.  Jobs are
  pickled, workers rebuild the topology from the job's ``TopologySpec``.

Ordinary exceptions are captured per job (the campaign retries them);
``KeyboardInterrupt`` — including the injected
:class:`~repro.engine.worker.WorkerInterrupted` — propagates immediately,
aborting the batch the way a real ^C would.
"""

from __future__ import annotations

import concurrent.futures
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.engine.planner import ShardJob
from repro.engine.worker import ShardOutcome, execute_job
from repro.net.spec import BuiltTopology

JobReturn = Tuple[ShardJob, Union[ShardOutcome, Exception]]

#: Test hook signature: called with the job just before it executes; raising
#: simulates a worker failing to start (the campaign's retry path).
FaultHook = Callable[[ShardJob], None]


class Executor(ABC):
    """Runs a batch of shard jobs; never raises for per-job Exceptions."""

    name = "?"

    @abstractmethod
    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        """Execute every job; outcomes/errors in submission order."""

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class SerialExecutor(Executor):
    """In-process, one shard at a time."""

    name = "serial"

    def __init__(
        self,
        prebuilt: Optional[BuiltTopology] = None,
        fault_hook: Optional[FaultHook] = None,
    ) -> None:
        self.prebuilt = prebuilt
        self.fault_hook = fault_hook

    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        returns: List[JobReturn] = []
        for job in jobs:
            try:
                if self.fault_hook is not None:
                    self.fault_hook(job)
                returns.append((job, execute_job(job, prebuilt=self.prebuilt)))
            except Exception as exc:  # noqa: BLE001 - retried by the campaign
                returns.append((job, exc))
        return returns


class ThreadPoolBackend(Executor):
    """Concurrent shards in threads; each rebuilds its own topology."""

    name = "thread"

    def __init__(
        self,
        workers: Optional[int] = None,
        fault_hook: Optional[FaultHook] = None,
    ) -> None:
        self.workers = workers
        self.fault_hook = fault_hook

    def _task(self, job: ShardJob) -> ShardOutcome:
        if self.fault_hook is not None:
            self.fault_hook(job)
        return execute_job(job)

    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        returns: List[JobReturn] = []
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        ) as pool:
            futures = [pool.submit(self._task, job) for job in jobs]
            for job, future in zip(jobs, futures):
                try:
                    returns.append((job, future.result()))
                except Exception as exc:  # noqa: BLE001
                    returns.append((job, exc))
        return returns


class ProcessPoolBackend(Executor):
    """Concurrent shards in worker processes (true parallelism)."""

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers

    def run_jobs(self, jobs: Sequence[ShardJob]) -> List[JobReturn]:
        returns: List[JobReturn] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            futures = [pool.submit(execute_job, job) for job in jobs]
            for job, future in zip(jobs, futures):
                try:
                    returns.append((job, future.result()))
                except Exception as exc:  # noqa: BLE001
                    returns.append((job, exc))
        return returns


def make_executor(
    name: str,
    workers: Optional[int] = None,
    prebuilt: Optional[BuiltTopology] = None,
    fault_hook: Optional[FaultHook] = None,
) -> Executor:
    """Build an executor backend by name (``serial``/``thread``/``process``)."""
    if name == "serial":
        return SerialExecutor(prebuilt=prebuilt, fault_hook=fault_hook)
    if prebuilt is not None:
        raise ValueError(
            f"a pre-built topology cannot be shared with the {name!r} "
            "backend; workers rebuild from the TopologySpec"
        )
    if name == "thread":
        return ThreadPoolBackend(workers=workers, fault_hook=fault_hook)
    if name == "process":
        if fault_hook is not None:
            raise ValueError("fault hooks are not picklable; use serial/thread")
        return ProcessPoolBackend(workers=workers)
    raise ValueError(f"unknown executor backend {name!r}")
