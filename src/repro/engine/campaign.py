"""The campaign runner: many ranges × many shards, with retry and resume.

A *campaign* is the paper's operational unit — §IV-E scans twelve ISPs'
delegated windows back to back over 48 hours.  ``Campaign`` sequences any
number of :class:`~repro.core.scanner.ScanConfig` ranges through an
executor backend: each range is split into shards by the
:class:`~repro.engine.planner.ShardPlanner`, shards run (serially or in a
thread/process pool), failures retry with exponential backoff, and shard
results merge back — cross-shard reply dedup included — into one
:class:`~repro.core.scanner.ScanResult` per range plus aggregate
:class:`~repro.core.stats.ScanStats`.

With a checkpoint directory the campaign is interruptible: completed shards
are never re-executed on resume (zero probes re-sent), and partially
scanned shards fast-forward to their checkpointed stream position.

Telemetry: every campaign owns a structured
:class:`~repro.telemetry.events.EventLog` (campaign start/finish, shard
completion with shard coordinates, retries, backoff waits, checkpoint
writes ingested from workers) and folds the per-shard
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshots shipped back
on each :class:`~repro.engine.worker.ShardOutcome` into one campaign-wide
registry — so a 4-shard process-pool scan reports the same probe/reply/
veto counters as its single-shot equivalent.  A
:class:`~repro.engine.monitor.ProgressMonitor` renders its status lines as
a subscriber of that log.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.core.scanner import ScanConfig, ScanResult
from repro.core.stats import ScanStats
from repro.engine.checkpoint import CheckpointStore
from repro.engine.executor import Executor, WatchdogTimeout, make_executor
from repro.engine.monitor import ProgressMonitor
from repro.engine.planner import ProbeSpec, ShardJob, ShardPlanner
from repro.engine.supervisor import Supervisor, SupervisorPolicy
from repro.engine.worker import ShardOutcome
from repro.net.spec import BuiltTopology, TopologySpec
from repro.telemetry.events import EventLog
from repro.telemetry.health import HealthEngine, HealthReport, HealthRule
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.timeseries import SeriesSet


class CampaignError(RuntimeError):
    """A shard exhausted its retries, or resume state is inconsistent."""

    def __init__(self, message: str, failures: Optional[Dict[str, Exception]] = None):
        super().__init__(message)
        self.failures = failures or {}


class CampaignAborted(RuntimeError):
    """An injected abort tripped at a shard boundary; nothing committed.

    Unlike the supervisor's SIGTERM drain — which *commits* whatever
    completed as a degraded partial snapshot — an abort leaves the store
    untouched: completed shards' checkpoints and sealed (uncommitted)
    segments persist on disk, so re-running the same campaign with
    ``resume=True`` skips every finished shard and converges to a store
    bit-identical to an uninterrupted run.  This is the primitive a
    scheduling daemon uses to preempt or drain a lease it intends to
    resume later.
    """


class CampaignSignals:
    """Process-lifetime signal registration, as an injectable hook.

    The stock one-shot campaign owns its process, so it installs real
    SIGTERM handlers for the run: the flight recorder's dump-on-SIGTERM
    scope, with the supervisor's drain handler chained inside it.  A
    daemon running many concurrent campaigns in one process must NOT let
    each campaign clobber the process handler — it injects
    :class:`NullSignals` and multiplexes its own single handler into each
    campaign's :meth:`Campaign.request_abort` /
    :meth:`Supervisor.request_drain` instead.
    """

    @contextlib.contextmanager
    def scope(
        self,
        recorder: Optional[FlightRecorder],
        supervisor: Optional[Supervisor],
    ) -> Iterator[None]:
        sigterm = (
            recorder.sigterm_scope() if recorder is not None
            else contextlib.nullcontext()
        )
        # The supervisor's drain handler installs *inside* the recorder's
        # scope, so it is the live SIGTERM handler: the first SIGTERM
        # requests a graceful drain, a second chains through to the
        # recorder's dump-and-die handler (operator escalation).
        drain = (
            supervisor.drain_scope() if supervisor is not None
            else contextlib.nullcontext()
        )
        with sigterm, drain:
            yield


class NullSignals(CampaignSignals):
    """No process-level handlers: the embedding service owns signals."""

    @contextlib.contextmanager
    def scope(
        self,
        recorder: Optional[FlightRecorder],
        supervisor: Optional[Supervisor],
    ) -> Iterator[None]:
        yield


@dataclass
class CampaignResult:
    """Merged per-range results plus campaign-wide accounting."""

    results: Dict[str, ScanResult]  # label -> merged, deduped result
    outcomes: List[ShardOutcome] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)
    wall_seconds: float = 0.0
    #: Campaign-wide metrics: every shard's registry snapshot merged.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Sampled probe-lifecycle traces from all shards (plain dicts).
    traces: List[Dict[str, object]] = field(default_factory=list)
    #: The campaign's structured event log (None only if never run).
    events: Optional[EventLog] = None
    #: The :mod:`repro.store` snapshot this run committed (store mode only).
    snapshot: Optional[str] = None
    #: ``ResultStore.info()`` taken right after the commit (store mode only).
    store_info: Optional[Dict[str, object]] = None
    #: Shard time series merged per-bucket (None unless the configs set a
    #: ``timeseries_interval``); bit-identical across executor backends.
    timeseries: Optional[SeriesSet] = None
    #: Health verdicts over :attr:`timeseries` (None unless enabled).
    health: Optional[HealthReport] = None
    #: Flight-recorder bundles written during this run (paths).
    flight_bundles: List[str] = field(default_factory=list)
    #: Shards the supervisor parked (:meth:`ParkedShard.to_dict` dicts, in
    #: parking order); always empty without a supervisor.
    degraded: List[Dict[str, object]] = field(default_factory=list)
    #: True when a SIGTERM drain cut the campaign short (graceful exit:
    #: completed shards committed, undispatched shards parked as drained).
    drained: bool = False

    @property
    def sent_this_run(self) -> int:
        """Probes actually sent by this invocation (checkpoint skips are 0)."""
        return sum(outcome.sent_this_run for outcome in self.outcomes)

    @property
    def shards_from_checkpoint(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_checkpoint)

    def metadata(self) -> Dict[str, object]:
        return {
            "campaign": self.events.campaign_id if self.events else "",
            "ranges": len(self.results),
            "shards": len(self.outcomes),
            "shards_from_checkpoint": self.shards_from_checkpoint,
            "sent": self.stats.sent,
            "sent_this_run": self.sent_this_run,
            "validated": self.stats.validated,
            "hit_rate": self.stats.hit_rate,
            "wall_seconds": self.wall_seconds,
            "snapshot": self.snapshot or "",
            "degraded": len(self.degraded),
            "drained": self.drained,
        }


class Campaign:
    """Orchestrates sharded scans of one or many ranges.

    ``configs`` maps labels to scan configs (a bare sequence gets labelled
    by range).  ``probe`` defaults per range to the probe a single-shot
    ``discover()`` of that config's seed would use, so engine campaigns and
    legacy scans produce identical reply sets.
    """

    def __init__(
        self,
        topology: TopologySpec,
        configs: Union[Mapping[str, ScanConfig], Sequence[ScanConfig]],
        probe: Optional[ProbeSpec] = None,
        shards: int = 1,
        executor: Union[str, Executor] = "serial",
        workers: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 256,
        resume: bool = False,
        monitor: Optional[ProgressMonitor] = None,
        max_retries: int = 2,
        backoff_base: float = 0.1,
        prebuilt: Optional[BuiltTopology] = None,
        events: Optional[EventLog] = None,
        shard_timeout: Optional[float] = None,
        store_dir: Optional[str] = None,
        snapshot: Optional[str] = None,
        health: Union[bool, Sequence[HealthRule]] = False,
        flight_dir: Optional[str] = None,
        recorder: Optional[FlightRecorder] = None,
        supervisor: Optional[SupervisorPolicy] = None,
        signals: Optional[CampaignSignals] = None,
        abort_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        if isinstance(configs, Mapping):
            self.configs: Dict[str, ScanConfig] = dict(configs)
        else:
            self.configs = {str(c.scan_range): c for c in configs}
        if not self.configs:
            raise ValueError("a campaign needs at least one scan range")
        self.topology = topology
        self.probe = probe
        self.shards = shards
        self.workers = workers
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.monitor = monitor
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        #: Degraded-mode supervision (see :mod:`repro.engine.supervisor`);
        #: a policy with ``enabled=False`` — the default — is equivalent to
        #: no supervisor at all: the stock fail-fast retry loop runs.
        self.supervisor_policy = (
            supervisor if supervisor is not None and supervisor.enabled
            else None
        )
        #: Set by :meth:`_prepare_result_store` on resume when this round's
        #: snapshot already committed (the crash happened after the manifest
        #: rewrite); :meth:`_commit_segments` then verifies instead of
        #: committing twice.
        self._snapshot_preexists = False
        #: Structured journal of everything the campaign does.  The monitor
        #: renders status lines as a subscriber, so the log is the single
        #: source of truth for progress reporting.
        # ``is not None``, not truthiness: an empty EventLog has len 0 and
        # would be silently replaced, orphaning the caller's subscribers.
        self.events = events if events is not None else EventLog()
        self.store_dir = store_dir
        #: The round name this run's segments commit under; every campaign
        #: run gets a distinct default so longitudinal rounds into one store
        #: never collide.
        self.snapshot = (
            (snapshot or f"round-{self.events.campaign_id}")
            if store_dir else None
        )
        #: Health rules evaluated over the merged series after the run:
        #: ``True`` = stock :func:`~repro.telemetry.health.default_rules`,
        #: a sequence = custom rules, ``False`` = off.
        if health is True:
            self._health_rules: Optional[List[HealthRule]] = None  # stock
            self._health = True
        elif health:
            self._health_rules = list(health)  # type: ignore[arg-type]
            self._health = True
        else:
            self._health_rules = None
            self._health = False
        #: Always-on crash telemetry: an explicit recorder wins; otherwise
        #: one is built when ``flight_dir`` names a bundle directory.
        self.recorder = recorder
        if self.recorder is None and flight_dir is not None:
            self.recorder = FlightRecorder(flight_dir)
        if self.recorder is not None:
            self.recorder.attach(self.events)
        if monitor is not None:
            self.events.subscribe(monitor.handle_event)
        #: Signal registration hook: the default installs this process's
        #: SIGTERM scopes for the run; a daemon injects :class:`NullSignals`
        #: and multiplexes its one handler across campaigns itself.
        self.signals = signals if signals is not None else CampaignSignals()
        #: Optional external preemption probe, polled at shard boundaries;
        #: returning True aborts the run (no commit) via
        #: :class:`CampaignAborted`.
        self.abort_check = abort_check
        self._abort = threading.Event()
        if isinstance(executor, Executor):
            self.executor = executor
        else:
            self.executor = make_executor(
                executor, workers=workers, prebuilt=prebuilt,
                shard_timeout=shard_timeout,
            )
        self.planner = ShardPlanner(shards)

    # -- preemption ----------------------------------------------------------

    def request_abort(self) -> None:
        """Ask the run to stop at the next shard boundary (no commit).

        Thread-safe; callable from any thread (a daemon's signal handler or
        scheduler loop).  The run raises :class:`CampaignAborted` once the
        in-flight shard batch completes.
        """
        self._abort.set()

    def _should_abort(self) -> bool:
        if self._abort.is_set():
            return True
        return self.abort_check is not None and bool(self.abort_check())

    def _abort_now(self, pending: int, completed: int) -> None:
        self.events.emit(
            "campaign_aborted", pending=pending, completed=completed
        )
        raise CampaignAborted(
            f"campaign aborted at shard boundary "
            f"({completed} shards done, {pending} pending)"
        )

    # -- planning ------------------------------------------------------------

    def plan(self) -> List[ShardJob]:
        """All shard jobs, range by range, in submission order."""
        jobs: List[ShardJob] = []
        for label, config in self.configs.items():
            probe = self.probe or ProbeSpec.for_seed(config.seed)
            jobs.extend(
                self.planner.plan(
                    config,
                    self.topology,
                    probe,
                    label=label,
                    checkpoint_dir=self.checkpoint_dir,
                    checkpoint_every=self.checkpoint_every,
                    store_dir=self.store_dir,
                    store_prefix=f"{self.snapshot}." if self.snapshot else "",
                )
            )
        return jobs

    def _prepare_store(self) -> None:
        if self.checkpoint_dir is None:
            return
        store = CheckpointStore(
            self.checkpoint_dir, on_event=lambda rec: self.events.ingest([rec])
        )
        manifest = {
            "ranges": sorted(self.configs),
            "shards": self.shards,
            "seeds": sorted({c.seed for c in self.configs.values()}),
        }
        existing = store.load_manifest()
        if self.resume:
            if existing is not None and (
                existing.get("ranges") != manifest["ranges"]
                or existing.get("shards") != manifest["shards"]
                or existing.get("seeds") != manifest["seeds"]
            ):
                raise CampaignError(
                    f"checkpoint directory {self.checkpoint_dir} belongs to a "
                    f"different campaign (manifest {existing!r}); refusing to "
                    "resume"
                )
        else:
            store.clear()
        store.write_manifest(manifest)

    def _prepare_result_store(self, metrics: MetricsRegistry):
        """Open (and validate) the result store before any probe is sent.

        Fail-fast: a corrupt manifest or a snapshot-name collision should
        abort the campaign *before* a 48-hour scan, not after it.  Returns
        the open :class:`~repro.store.store.ResultStore`, or None when the
        campaign runs storeless.
        """
        if self.store_dir is None:
            return None
        from repro.store.store import ResultStore, StoreError

        try:
            store = ResultStore(
                self.store_dir, metrics=metrics,
                on_event=lambda rec: self.events.ingest([rec]),
            )
        except StoreError as exc:
            raise CampaignError(f"result store unusable: {exc}") from exc
        assert self.snapshot is not None
        if self.snapshot in store.snapshots:
            if self.resume:
                # The previous invocation died *after* its manifest rewrite
                # landed: the round is already durable.  Workers will
                # re-seal byte-identical segments over the committed files
                # (their content is a pure function of the checkpoint
                # state), so the run proceeds and the commit step verifies
                # rather than double-committing.
                self._snapshot_preexists = True
                self.events.emit(
                    "store_snapshot_resumed", snapshot=self.snapshot
                )
                return store
            raise CampaignError(
                f"snapshot {self.snapshot!r} already exists in "
                f"{self.store_dir}; pick a different round name"
            )
        return store

    def _segment_prefix(self) -> str:
        """This round's segment-file namespace (for the orphan sweep)."""
        from repro.store.store import ResultStore

        assert self.snapshot is not None
        return ResultStore.segment_name(self.snapshot + ".")[: -len(".seg")]

    def _commit_segments(
        self,
        store,
        ordered: List[ShardOutcome],
        result: CampaignResult,
        supervisor: Optional[Supervisor] = None,
    ) -> None:
        """One manifest rewrite makes every shard's sealed segment — and the
        round's snapshot — visible atomically.  Workers only ever sealed
        files; nothing was queryable until now."""
        from repro.store.store import StoreError

        assert self.snapshot is not None
        if self._snapshot_preexists:
            # Already committed by the invocation that died after its
            # manifest rewrite; this run's re-sealed segments replaced the
            # committed files byte-for-byte.  Sweep any sealed-but-never-
            # committed leftovers in this round's namespace and move on.
            store.sweep_orphans(prefix=self._segment_prefix())
            result.snapshot = self.snapshot
            result.store_info = store.info()
            return
        metas = [o.segment for o in ordered if o.segment is not None]
        labels: Dict[str, List[str]] = {}
        for outcome in ordered:
            if outcome.segment is not None:
                labels.setdefault(outcome.label, []).append(
                    str(outcome.segment["name"])
                )
        snapshot_meta: Dict[str, object] = {
            "campaign": self.events.campaign_id,
            "shards": self.shards,
            "labels": labels,
        }
        if supervisor is not None and supervisor.parked:
            # A partial commit: the snapshot says so, queryably, forever.
            snapshot_meta["degraded"] = supervisor.degraded_ids
        try:
            store.commit(
                metas,
                snapshot=self.snapshot,
                snapshot_meta=snapshot_meta,
            )
        except StoreError as exc:
            raise CampaignError(
                f"committing shard segments failed: {exc}"
            ) from exc
        # Crash-recovery janitor: segments a *previous* invocation sealed
        # but never committed (killed between seal and manifest rewrite)
        # are garbage now that this round's commit landed.
        store.sweep_orphans(prefix=self._segment_prefix())
        result.snapshot = self.snapshot
        result.store_info = store.info()
        self.events.emit(
            "store_committed",
            snapshot=self.snapshot,
            segments=len(metas),
            rows=sum(int(m.get("rows", 0)) for m in metas),
        )

    # -- execution -----------------------------------------------------------

    def run(self, jobs: Optional[List[ShardJob]] = None) -> CampaignResult:
        """Run (or resume) the campaign; raises CampaignError on failure."""
        started = time.perf_counter()
        self._prepare_store()
        metrics = MetricsRegistry()
        recorder = self.recorder
        if recorder is not None:
            recorder.metrics = metrics
        result_store = self._prepare_result_store(metrics)
        if jobs is None:
            jobs = self.plan()

        self.events.emit(
            "campaign_started", shards=len(jobs), ranges=len(self.configs)
        )

        traces: List[Dict[str, object]] = []
        series: Optional[SeriesSet] = None
        attempts: Dict[str, int] = {job.job_id: 0 for job in jobs}
        outcomes: Dict[str, ShardOutcome] = {}
        pending = list(jobs)
        wave = 0
        supervisor = (
            Supervisor(self.supervisor_policy, events=self.events,
                       metrics=metrics)
            if self.supervisor_policy is not None
            else None
        )
        with self.signals.scope(recorder, supervisor):
            while pending:
                if self._should_abort():
                    self._abort_now(len(pending), len(outcomes))
                if supervisor is not None and supervisor.draining:
                    for job in pending:
                        supervisor.park_drained(
                            job.job_id, attempts[job.job_id]
                        )
                    pending = []
                    break
                if wave and self.backoff_base:
                    delay = self.backoff_base * (2 ** (wave - 1))
                    self.events.emit("backoff", wave=wave, delay=delay)
                    time.sleep(delay)
                retry: List[ShardJob] = []
                failures: Dict[str, Exception] = {}
                # With a supervisor (or an injected abort probe) on the
                # serial backend, dispatch one job at a time so a drain or
                # abort request takes effect between shards; pooled backends
                # dispatch the whole wave and stop at its barrier (in-flight
                # shards run to completion either way).
                interruptible = (
                    supervisor is not None
                    or self.abort_check is not None
                    or self._abort.is_set()
                )
                if interruptible and self.executor.name == "serial":
                    batches: List[List[ShardJob]] = [[j] for j in pending]
                else:
                    batches = [list(pending)]
                returns = []
                aborted_boundary = False
                for batch in batches:
                    if self._should_abort():
                        aborted_boundary = True
                        break
                    if supervisor is not None and supervisor.draining:
                        for job in batch:
                            supervisor.park_drained(
                                job.job_id, attempts[job.job_id]
                            )
                        continue
                    returns.extend(self.executor.run_jobs(batch))
                for job, outcome in returns:
                    attempts[job.job_id] += 1
                    if isinstance(outcome, Exception):
                        if isinstance(outcome, WatchdogTimeout):
                            # A hung worker the watchdog abandoned; it counts
                            # toward max_retries like any other shard failure.
                            metrics.counter("campaign_watchdog_kills").inc()
                            self.events.emit(
                                "watchdog_timeout",
                                job_id=job.job_id,
                                attempt=attempts[job.job_id],
                                error=str(outcome),
                            )
                        if supervisor is not None:
                            verdict = supervisor.note_failure(
                                job.job_id, outcome,
                                attempts[job.job_id], self.max_retries,
                            )
                            if verdict == "retry":
                                retry.append(job)
                                self.events.emit(
                                    "shard_retry",
                                    job_id=job.job_id,
                                    attempt=attempts[job.job_id],
                                    error=str(outcome),
                                )
                            # Parked shards leave the rotation; the
                            # supervisor already journalled why.
                        elif attempts[job.job_id] > self.max_retries:
                            failures[job.job_id] = outcome
                        else:
                            retry.append(job)
                            self.events.emit(
                                "shard_retry",
                                job_id=job.job_id,
                                attempt=attempts[job.job_id],
                                error=str(outcome),
                            )
                        continue
                    outcome.attempts = attempts[job.job_id]
                    outcomes[job.job_id] = outcome
                    metrics.merge_dict(outcome.metrics)
                    traces.extend(outcome.traces)
                    if outcome.timeseries is not None:
                        shard_series = SeriesSet.from_dict(outcome.timeseries)
                        if series is None:
                            series = shard_series
                        else:
                            series.merge(shard_series)
                        if recorder is not None:
                            recorder.series = series
                    if recorder is not None and outcome.traces:
                        recorder.add_traces(outcome.traces)
                    self.events.ingest(outcome.events)
                    self.events.emit(
                        "shard_finished",
                        job_id=job.job_id,
                        label=outcome.label,
                        shard=job.config.shard,
                        shards=job.config.shards,
                        sent_this_run=outcome.sent_this_run,
                        sent=outcome.result.stats.sent,
                        validated=outcome.result.stats.validated,
                        from_checkpoint=outcome.from_checkpoint,
                        attempts=outcome.attempts,
                        worker=outcome.worker,
                    )
                if failures:
                    self.events.emit(
                        "campaign_failed", failed=sorted(failures)
                    )
                    # The crash artifact: whatever telemetry tail exists at
                    # the moment the campaign gives up.  Trigger events
                    # (watchdog kills, quarantines) already dumped their own
                    # bundles; this path covers plain shard failures.
                    if recorder is not None:
                        recorder.dump("campaign_failed")
                    raise CampaignError(
                        "shards failed after retries: "
                        + ", ".join(sorted(failures)),
                        failures,
                    )
                if aborted_boundary:
                    # Completed batches were ingested above (their
                    # checkpoints and sealed segments are durable); the
                    # rest of the wave never dispatched.
                    self._abort_now(
                        len(jobs) - len(outcomes), len(outcomes)
                    )
                pending = retry
                wave += 1

        # Without a supervisor every job has an outcome here (or the run
        # raised); with one, parked shards are simply absent.
        ordered = [
            outcomes[job.job_id] for job in jobs if job.job_id in outcomes
        ]
        result = CampaignResult(results={})
        result.outcomes = ordered
        result.metrics = metrics
        result.traces = traces
        result.events = self.events
        for label, config in self.configs.items():
            merged = ScanResult(range=config.scan_range)
            for outcome in ordered:
                if outcome.label == label:
                    merged.merge(outcome.result)
            result.results[label] = merged
            result.stats.merge(merged.stats)
        result.timeseries = series
        if self._health and series is not None:
            report = HealthEngine(self._health_rules).evaluate(series)
            report.emit(self.events)
            result.health = report
            metrics.counter("campaign_health_windows").inc(
                len(report.windows)
            )
        if supervisor is not None:
            result.degraded = [s.to_dict() for s in supervisor.parked]
            result.drained = supervisor.draining
            if supervisor.parked:
                self.events.emit(
                    "campaign_degraded",
                    shards=supervisor.degraded_ids,
                    completed=len(ordered),
                )
            if supervisor.draining:
                self.events.emit(
                    "campaign_drained",
                    completed=len(ordered),
                    parked=len(supervisor.parked),
                )
        if result_store is not None:
            self._commit_segments(
                result_store, ordered, result, supervisor=supervisor
            )
        result.wall_seconds = time.perf_counter() - started
        metrics.counter("campaign_shards_completed").inc(len(ordered))
        metrics.counter("campaign_shards_from_checkpoint").inc(
            result.shards_from_checkpoint
        )
        metrics.gauge("campaign_wall_seconds").set(result.wall_seconds)
        self.events.emit(
            "campaign_finished",
            wall_seconds=result.wall_seconds,
            sent=result.stats.sent,
            validated=result.stats.validated,
            shards=len(ordered),
        )
        if recorder is not None:
            result.flight_bundles = list(recorder.bundles)
        return result
