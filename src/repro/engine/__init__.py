"""Scan orchestration: sharding, executors, checkpoint/resume, campaigns.

The single-shot :class:`~repro.core.scanner.Scanner` is one synchronous
loop in one process; this package turns it into an orchestrated service the
way XMap/ZMap operate at Internet scale — the permutation's disjoint shard
streams fan out over executor backends, progress checkpoints to ZMap-style
JSON state files, and a campaign sequences many delegated windows (the
twelve-ISP reproduction) with per-shard retry and cross-shard dedup.

Every campaign journals its lifecycle into a
:class:`~repro.telemetry.events.EventLog` and merges per-shard
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshots into one
campaign-wide registry (see :mod:`repro.telemetry`).
"""

from repro.engine.campaign import (
    Campaign,
    CampaignAborted,
    CampaignError,
    CampaignResult,
    CampaignSignals,
    NullSignals,
)
from repro.engine.checkpoint import CheckpointStore, ShardState
from repro.engine.executor import (
    Executor,
    ProcessPoolBackend,
    SerialExecutor,
    ThreadPoolBackend,
    WatchdogTimeout,
    make_executor,
)
from repro.engine.monitor import ProgressMonitor
from repro.engine.planner import (
    CoverageError,
    ProbeSpec,
    ShardJob,
    ShardPlanner,
)
from repro.engine.supervisor import (
    ParkedShard,
    Supervisor,
    SupervisorPolicy,
    failure_signature,
)
from repro.engine.worker import ShardOutcome, WorkerInterrupted, execute_job

__all__ = [
    "Campaign",
    "CampaignAborted",
    "CampaignError",
    "CampaignResult",
    "CampaignSignals",
    "NullSignals",
    "CheckpointStore",
    "CoverageError",
    "Executor",
    "ParkedShard",
    "ProbeSpec",
    "ProcessPoolBackend",
    "ProgressMonitor",
    "SerialExecutor",
    "ShardJob",
    "ShardOutcome",
    "ShardPlanner",
    "ShardState",
    "Supervisor",
    "SupervisorPolicy",
    "ThreadPoolBackend",
    "WatchdogTimeout",
    "WorkerInterrupted",
    "execute_job",
    "failure_signature",
    "make_executor",
]
