"""The kill-anywhere harness: SIGKILL a checkpointing campaign at any
durability syscall and prove the resumed run converges to the same store.

This is the operational claim behind the whole crash-safety design — the
checkpoint protocol (PR 4), the store's seal-then-commit protocol (PR 5/6),
the deterministic segment names, the orphan sweep — stated as a property::

    for every durability operation N the campaign performs:
        kill -9 the campaign at operation N
        rerun it with --resume (repeatedly, if the resume dies too)
        the final committed store is row-for-row identical to an
        uninterrupted run: zero duplicate rows, zero lost rows, the same
        snapshot membership.

Run as a module so a test (or CI) can drive real process deaths::

    python -m repro.engine.killtest --dir D --count-ops        # baseline +
                                                               # op census
    python -m repro.engine.killtest --dir D --kill-after-ops 17  # dies
    python -m repro.engine.killtest --dir D --resume             # recovers

The kill switch is a :class:`~repro.store.oslayer.OsLayer` installed as
the process-wide default *before* the campaign starts, so every checkpoint
write, segment write/fsync, manifest rename, and directory fsync —
including those inside forked process-pool workers, which inherit the
default layer — ticks the op counter; when the counter hits the threshold
the process SIGKILLs itself **before** performing the op.  No cleanup, no
``atexit``, no flushed buffers: the genuine article.

The scan itself is deterministic (fixed topology seed, fixed scan seed,
fixed shard count), so every invocation walks the same op sequence and
``--kill-after-ops N`` is a reproducible crash point, not a race.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import IO, Optional

from repro.store.oslayer import RealOs, set_default_os

#: The fixed scan everybody runs: 256 targets over the mini topology.
SPEC = "2001:db8:1::/56-64"
SNAPSHOT = "kill-round"
SEED = 5


class KillSwitchOs(RealOs):
    """Counts durability ops; SIGKILLs the calling process at op N.

    Each process counts its own ops (forked pool workers start from the
    parent's count at fork time), so under the process backend the switch
    kills whichever process reaches the threshold first — a worker death
    the campaign retries, or a parent death the next ``--resume`` recovers.
    Either way the property under test is the same.
    """

    def __init__(self, kill_after: Optional[int] = None) -> None:
        self.ops = 0
        self.kill_after = kill_after

    def _tick(self) -> None:
        self.ops += 1
        if self.kill_after is not None and self.ops >= self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def write(self, handle: IO[bytes], data: bytes) -> None:
        self._tick()
        super().write(handle, data)

    def fsync(self, handle: IO) -> None:
        self._tick()
        super().fsync(handle)

    def replace(self, src, dst) -> None:
        self._tick()
        super().replace(src, dst)

    def fsync_dir(self, path) -> None:
        self._tick()
        super().fsync_dir(path)


def build_campaign(directory: str, executor: str, shards: int,
                   resume: bool, checkpoint_every: int):
    from repro.core.scanner import ScanConfig
    from repro.core.target import ScanRange
    from repro.engine.campaign import Campaign
    from repro.net.spec import TopologySpec

    config = ScanConfig(scan_range=ScanRange.parse(SPEC), seed=SEED)
    return Campaign(
        TopologySpec.mini(),
        {"kill": config},
        shards=shards,
        executor=executor,
        checkpoint_dir=os.path.join(directory, "ckpt"),
        checkpoint_every=checkpoint_every,
        resume=resume,
        store_dir=os.path.join(directory, "store"),
        snapshot=SNAPSHOT,
        backoff_base=0.0,
        max_retries=3,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL-a-campaign-anywhere crash-recovery harness"
    )
    parser.add_argument("--dir", required=True,
                        help="working directory (ckpt/ + store/ created)")
    parser.add_argument("--executor", default="serial",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--checkpoint-every", type=int, default=64)
    parser.add_argument("--kill-after-ops", type=int, default=None,
                        help="SIGKILL the process reaching this op count")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed run instead of starting fresh")
    parser.add_argument("--count-ops", action="store_true",
                        help="report the total durability-op count")
    args = parser.parse_args(argv)

    switch = KillSwitchOs(kill_after=args.kill_after_ops)
    # Default-layer installation (not constructor plumbing) is the point:
    # forked pool workers inherit it, so kills land in workers too.
    set_default_os(switch)
    try:
        campaign = build_campaign(
            args.dir, args.executor, args.shards, args.resume,
            args.checkpoint_every,
        )
        result = campaign.run()
    finally:
        set_default_os(None)

    rows = sum(len(r.results) for r in result.results.values())
    print(json.dumps({
        "snapshot": result.snapshot,
        "rows": rows,
        "sent_this_run": result.sent_this_run,
        "shards_from_checkpoint": result.shards_from_checkpoint,
        "ops": switch.ops if args.count_ops else None,
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
