"""Campaign supervision: circuit breakers, retry budgets, graceful drain.

The stock campaign retry loop is all-or-nothing: any shard that exhausts
``max_retries`` raises :class:`~repro.engine.campaign.CampaignError` and
the whole run — including every healthy shard's results — is thrown away.
That is the right default for a reproduction (determinism suites must not
silently drop coverage), but it is the wrong posture for the paper's
operational reality: a 48-hour, twelve-ISP campaign that loses one shard
to a dying disk at hour 40 should land the other 95% of the measurement,
clearly labelled, not crash.

:class:`Supervisor` is that opt-in posture, enabled explicitly via
:class:`SupervisorPolicy` (``enabled=False`` default — a campaign without
a supervisor executes the byte-identical stock path):

* **per-shard circuit breakers** — every failure is classified into a
  *signature* (exception type, plus errno for OSErrors).  A shard that has
  failed ``breaker_distinct`` structurally different ways is not flaky,
  it is *broken*; the breaker opens and the shard is parked as degraded
  instead of burning the remaining retry waves on it.
* **global retry budget** — ``retry_budget`` caps total retries across
  all shards; when spent, further failures park immediately.  Bounds the
  worst-case tail of a campaign where everything is failing.
* **graceful partial commit** — parked shards are recorded on the result
  (and in the store snapshot's metadata) as ``degraded``; completed
  shards still merge and commit.
* **SIGTERM drain** — :meth:`drain_scope` installs a chaining handler:
  the first SIGTERM flips :attr:`draining`, the campaign stops dispatching
  new work, seals what is in flight, checkpoints, commits, and exits
  cleanly with the drained shards reported as such.
"""

from __future__ import annotations

import contextlib
import errno
import signal
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional


def failure_signature(exc: BaseException) -> str:
    """Classify a failure: exception type, refined by errno for OSErrors.

    Two EIOs are one way of failing; an EIO and an ENOSPC are two.  The
    distinct-signature count is what trips a shard's breaker — a shard
    failing the *same* way repeatedly is retried (transient), a shard
    failing *differently* each time is parked (broken).
    """
    if isinstance(exc, OSError) and exc.errno is not None:
        name = errno.errorcode.get(exc.errno, str(exc.errno))
        return f"{type(exc).__name__}:{name}"
    return type(exc).__name__


@dataclass
class SupervisorPolicy:
    """Knobs for degraded-mode campaign supervision.  All off by default:
    a policy with ``enabled=False`` (or no policy at all) leaves the
    campaign's behaviour bit-identical to the stock retry loop."""

    enabled: bool = False
    #: Total retries allowed across *all* shards; None = unbounded (the
    #: per-shard ``max_retries`` still applies).
    retry_budget: Optional[int] = None
    #: Distinct failure signatures that open a shard's circuit breaker.
    breaker_distinct: int = 3
    #: Seconds the SIGTERM drain path allows in-flight shards to finish
    #: before the campaign gives up waiting (advisory; recorded on events).
    drain_timeout: float = 30.0


#: Reasons a shard can be parked (recorded on events and result).
BREAKER_OPEN = "breaker-open"
RETRIES_EXHAUSTED = "retries-exhausted"
BUDGET_EXHAUSTED = "retry-budget-exhausted"
DRAINED = "drained"


@dataclass
class ParkedShard:
    """One shard the supervisor took out of rotation, and why."""

    job_id: str
    reason: str
    signatures: List[str] = field(default_factory=list)
    attempts: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "reason": self.reason,
            "signatures": list(self.signatures),
            "attempts": self.attempts,
        }


class Supervisor:
    """Per-campaign supervision state; one instance per ``Campaign.run``."""

    def __init__(self, policy: SupervisorPolicy, events=None,
                 metrics=None) -> None:
        self.policy = policy
        self.events = events
        if metrics is None:
            from repro.telemetry.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        #: job_id -> distinct failure signatures seen (insertion order).
        self.breakers: Dict[str, List[str]] = {}
        #: Global retries granted so far (counts against ``retry_budget``).
        self.retries_spent = 0
        #: Shards parked out of rotation, in parking order.
        self.parked: List[ParkedShard] = []
        self._drain = threading.Event()

    # -- failure routing ---------------------------------------------------

    def note_failure(self, job_id: str, exc: BaseException,
                     attempt: int, max_retries: int) -> str:
        """Route one shard failure: returns ``"retry"`` or ``"park"``."""
        signature = failure_signature(exc)
        signatures = self.breakers.setdefault(job_id, [])
        if signature not in signatures:
            signatures.append(signature)
        if len(signatures) >= self.policy.breaker_distinct:
            return self._park(job_id, BREAKER_OPEN, signatures, attempt)
        if attempt > max_retries:
            return self._park(job_id, RETRIES_EXHAUSTED, signatures, attempt)
        if (
            self.policy.retry_budget is not None
            and self.retries_spent >= self.policy.retry_budget
        ):
            if self.events is not None:
                self.events.emit(
                    "retry_budget_exhausted",
                    budget=self.policy.retry_budget,
                    job_id=job_id,
                )
            return self._park(job_id, BUDGET_EXHAUSTED, signatures, attempt)
        self.retries_spent += 1
        return "retry"

    def park_drained(self, job_id: str, attempts: int = 0) -> None:
        """Park a shard the drain cut off before it could run (or finish)."""
        self._park(job_id, DRAINED, self.breakers.get(job_id, []), attempts)

    def _park(self, job_id: str, reason: str, signatures: List[str],
              attempts: int) -> str:
        self.parked.append(
            ParkedShard(
                job_id=job_id,
                reason=reason,
                signatures=list(signatures),
                attempts=attempts,
            )
        )
        self.metrics.counter("supervisor_shards_degraded",
                             reason=reason).inc()
        if self.events is not None:
            self.events.emit(
                "shard_degraded",
                job_id=job_id,
                reason=reason,
                signatures=list(signatures),
                attempts=attempts,
            )
        return "park"

    @property
    def degraded_ids(self) -> List[str]:
        return [shard.job_id for shard in self.parked]

    # -- graceful drain ----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def request_drain(self) -> None:
        """Stop dispatching new shards; finish/seal what is in flight."""
        if not self._drain.is_set():
            self._drain.set()
            self.metrics.counter("supervisor_drains").inc()
            if self.events is not None:
                self.events.emit(
                    "campaign_drain_requested",
                    drain_timeout=self.policy.drain_timeout,
                )

    @contextlib.contextmanager
    def drain_scope(self):
        """Catch the *first* SIGTERM as a drain request.

        Chains: a second SIGTERM falls through to whatever handler was
        installed before (the flight recorder's dump-and-die scope, or the
        default action), so an operator who really means it still wins.
        Main-thread only — elsewhere this is a no-op passthrough, matching
        :meth:`FlightRecorder.sigterm_scope`'s discipline.
        """
        if threading.current_thread() is not threading.main_thread():
            yield self
            return
        previous = signal.getsignal(signal.SIGTERM)

        def handler(signum, frame):
            if self._drain.is_set():
                # Second SIGTERM: restore and re-deliver to the prior
                # handler — drain was not fast enough for the operator.
                signal.signal(signal.SIGTERM, previous)
                if callable(previous):
                    previous(signum, frame)
                else:  # pragma: no cover - SIG_DFL/SIG_IGN re-raise path
                    signal.raise_signal(signal.SIGTERM)
                return
            self.request_drain()

        signal.signal(signal.SIGTERM, handler)
        try:
            yield self
        finally:
            signal.signal(signal.SIGTERM, previous)
