"""Shard planning: split one scan into disjoint, jointly exhaustive jobs.

XMap/ZMap shard a scan by partitioning the cyclic-group orbit positionally
(shard *i* of *k* starts at ``s·g^i`` and steps ``g^k``); the permutation
layer already implements that (``Permutation.indices(shard, shards)``).
The planner's job is the orchestration half: stamp out one picklable
:class:`ShardJob` per shard — topology recipe, probe recipe, shard-annotated
:class:`~repro.core.scanner.ScanConfig` — and, on request, *prove* the split
is a partition by enumerating every shard stream and checking that their
union is exactly the index space with no overlaps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.core.permutation import make_permutation
from repro.core.probes.base import ProbeModule
from repro.core.scanner import ScanConfig
from repro.core.validate import Validator, seed_secret
from repro.net.packet import MAX_HOP_LIMIT
from repro.net.spec import TopologySpec


class CoverageError(ValueError):
    """The shard split does not partition the scan's index space."""


@dataclass(frozen=True)
class ProbeSpec:
    """Picklable recipe for rebuilding a probe module inside a worker.

    Probe modules hold a :class:`~repro.core.validate.Validator`; shipping
    the 16-byte secret (not the object) keeps jobs small and guarantees
    every shard validates replies identically.
    """

    kind: str = "icmp"
    secret: bytes = b"\x00" * 15 + b"\x01"
    hop_limit: int = MAX_HOP_LIMIT
    port: int = 0  # tcp/udp probes only

    @classmethod
    def for_seed(
        cls, seed: int, kind: str = "icmp", hop_limit: int = MAX_HOP_LIMIT,
        port: int = 0,
    ) -> "ProbeSpec":
        """The probe a single-shot :func:`repro.discovery.periphery.discover`
        of the same seed would use — sharded and unsharded scans agree."""
        return cls(kind=kind, secret=seed_secret(seed), hop_limit=hop_limit,
                   port=port)

    def build(self) -> ProbeModule:
        validator = Validator(self.secret)
        if self.kind == "icmp":
            from repro.core.probes.icmp import IcmpEchoProbe

            return IcmpEchoProbe(validator, hop_limit=self.hop_limit)
        if self.kind == "tcp":
            from repro.core.probes.tcp import TcpSynProbe

            return TcpSynProbe(validator, self.port)
        if self.kind == "udp":
            from repro.core.probes.udp import UdpProbe

            return UdpProbe(validator, self.port)
        raise ValueError(f"unknown probe kind {self.kind!r}")


@dataclass
class ShardJob:
    """Everything one worker needs to run (and checkpoint) one shard."""

    job_id: str
    label: str  # the campaign range this shard belongs to
    topology: TopologySpec
    probe: ProbeSpec
    config: ScanConfig  # shard/shards already set
    checkpoint_dir: Optional[str] = None
    #: Probes between partial-state writes (0 = final write only).
    checkpoint_every: int = 0
    #: When set, the worker writes this shard's rows into a sealed
    #: :mod:`repro.store` segment under ``<store_dir>/segments/`` and ships
    #: the segment meta home on the outcome; the campaign parent commits
    #: all shard segments in one manifest rewrite.  Without checkpointing
    #: the rows *stream* straight to the segment (bounded memory) instead
    #: of accumulating on ``ScanResult.results``.
    store_dir: Optional[str] = None
    #: Prepended to the job id when deriving the segment file name, so two
    #: campaign rounds over the same ranges land in distinct segments of
    #: the same store (the longitudinal case).
    store_prefix: str = ""
    #: Failure injection: raise ``WorkerInterrupted`` once this many probes
    #: have been sent in the current attempt.  Tests use it to simulate a
    #: worker dying mid-shard; production jobs leave it None.
    interrupt_after: Optional[int] = None
    #: Harder failure injection: SIGKILL the worker process (after writing a
    #: partial checkpoint) once this many probes have been sent — a *real*
    #: process death the kill-test resumes from.  Only honoured on a fresh
    #: attempt (``skip == 0``), so the resumed run survives.  Production
    #: jobs leave it None.
    kill_after: Optional[int] = None


class ShardPlanner:
    """Splits a :class:`ScanConfig` into N shard jobs over the permutation."""

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shard count must be positive")
        self.shards = shards

    def plan(
        self,
        config: ScanConfig,
        topology: TopologySpec,
        probe: ProbeSpec,
        label: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        store_dir: Optional[str] = None,
        store_prefix: str = "",
    ) -> List[ShardJob]:
        """One job per shard; any shard/skip already on ``config`` is reset."""
        label = label or str(config.scan_range)
        jobs = []
        for shard in range(self.shards):
            shard_config = dataclasses.replace(
                config, shard=shard, shards=self.shards, skip=0
            )
            jobs.append(
                ShardJob(
                    job_id=f"{label}.s{shard:02d}of{self.shards:02d}",
                    label=label,
                    topology=topology,
                    probe=probe,
                    config=shard_config,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    store_dir=store_dir,
                    store_prefix=store_prefix,
                )
            )
        return jobs

    def verify_coverage(self, config: ScanConfig, limit: int = 1 << 22) -> int:
        """Prove the split is a partition of ``range(scan_range.count)``.

        Enumerates every shard's index stream and checks pairwise
        disjointness and joint exhaustiveness; returns the space size.
        Raises :class:`CoverageError` on any violation, or if the space is
        too large to enumerate (``limit``).
        """
        count = config.scan_range.count
        if count > limit:
            raise CoverageError(
                f"scan space of {count} indices exceeds the enumeration "
                f"limit ({limit}); coverage holds by construction"
            )
        permutation = make_permutation(
            count, seed=config.seed, backend=config.permutation_backend
        )
        seen = set()
        for shard in range(self.shards):
            for index in permutation.indices(shard, self.shards):
                if index in seen:
                    raise CoverageError(
                        f"index {index} emitted by more than one shard"
                    )
                seen.add(index)
        if len(seen) != count:
            missing = count - len(seen)
            raise CoverageError(f"{missing} indices never emitted by any shard")
        return count
