"""ZMap-style JSON checkpoint state for interruptible campaigns.

ZMap's ``--status-updates-file``/state machinery lets a 48-hour scan survive
the scanner host dying; this is the reproduction's equivalent.  One JSON
file per shard records the shard coordinates, the position reached in the
shard's permutation stream (the resume offset for
``ScanConfig.skip``), the partial :class:`~repro.core.stats.ScanStats`, the
validated replies so far, and an order-independent SHA-256 digest of the
deduplicated reply set.  Writes are atomic (tmp + rename) so a kill during
a checkpoint write leaves the previous state intact, and a digest mismatch
on load — a torn or hand-edited file — discards the state rather than
resuming from corruption.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.core.scanner import ScanResult

STATE_VERSION = 1

#: Shard status values: a ``partial`` shard resumes from ``position``; a
#: ``done`` shard is never re-executed (zero probes on resume).
PARTIAL = "partial"
DONE = "done"


@dataclass
class ShardState:
    """The persisted state of one shard."""

    job_id: str
    status: str  # PARTIAL | DONE
    shard: int
    shards: int
    position: int  # shard-stream positions consumed (resume offset)
    result: ScanResult
    digest: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": STATE_VERSION,
            "job_id": self.job_id,
            "status": self.status,
            "shard": self.shard,
            "shards": self.shards,
            "position": self.position,
            "result": self.result.to_dict(),
            "digest": self.digest or self.result.dedup_digest(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardState":
        result = ScanResult.from_dict(data["result"])  # type: ignore[arg-type]
        return cls(
            job_id=str(data["job_id"]),
            status=str(data["status"]),
            shard=int(data["shard"]),  # type: ignore[arg-type]
            shards=int(data["shards"]),  # type: ignore[arg-type]
            position=int(data["position"]),  # type: ignore[arg-type]
            result=result,
            digest=str(data.get("digest", "")),
        )


def _filename(job_id: str) -> str:
    """A filesystem-safe name for a shard state file."""
    safe = job_id.replace("/", "-").replace(":", "_")
    return f"shard-{safe}.json"


class CheckpointStore:
    """A directory of per-shard state files plus one campaign manifest.

    ``on_event`` is an optional telemetry hook: every state transition the
    store performs (shard write, manifest write, clear) is reported as one
    structured-event dict, so checkpoint activity lands in the campaign's
    :class:`~repro.telemetry.events.EventLog` (or a worker's local buffer)
    without the store knowing anything about logging.
    """

    MANIFEST = "campaign.json"

    def __init__(
        self,
        directory: "str | os.PathLike[str]",
        on_event: "Optional[callable]" = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.on_event = on_event

    def _event(self, event_type: str, **fields: object) -> None:
        if self.on_event is not None:
            self.on_event({"type": event_type, **fields})

    # -- shard state -----------------------------------------------------------

    def shard_path(self, job_id: str) -> pathlib.Path:
        return self.directory / _filename(job_id)

    def write_shard(self, state: ShardState) -> None:
        """Atomically persist one shard's state."""
        path = self.shard_path(state.job_id)
        payload = state.to_dict()
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        self._event(
            "checkpoint_written",
            job_id=state.job_id,
            status=state.status,
            position=state.position,
            sent=state.result.stats.sent,
        )

    def load_shard(self, job_id: str) -> Optional[ShardState]:
        """Load a shard's state; None if absent, unreadable, or corrupt."""
        path = self.shard_path(job_id)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            if data.get("version") != STATE_VERSION:
                return None
            state = ShardState.from_dict(data)
        except (ValueError, KeyError, TypeError):
            return None
        if state.digest and state.digest != state.result.dedup_digest():
            return None  # torn write or tampering: do not resume from it
        return state

    def iter_states(self) -> Iterator[ShardState]:
        for path in sorted(self.directory.glob("shard-*.json")):
            data = json.loads(path.read_text())
            if data.get("version") == STATE_VERSION:
                yield ShardState.from_dict(data)

    # -- campaign manifest ----------------------------------------------------------

    def write_manifest(self, meta: Dict[str, object]) -> None:
        path = self.directory / self.MANIFEST
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({"version": STATE_VERSION, **meta}))
        tmp.replace(path)
        self._event("manifest_written", directory=str(self.directory))

    def load_manifest(self) -> Optional[Dict[str, object]]:
        path = self.directory / self.MANIFEST
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except ValueError:
            return None
        return data if data.get("version") == STATE_VERSION else None

    def clear(self) -> None:
        """Forget all persisted state (fresh campaign over an old directory)."""
        cleared = 0
        for path in self.directory.glob("shard-*.json"):
            path.unlink()
            cleared += 1
        manifest = self.directory / self.MANIFEST
        if manifest.exists():
            manifest.unlink()
        self._event("checkpoints_cleared", directory=str(self.directory),
                    shards=cleared)
