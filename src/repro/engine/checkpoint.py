"""ZMap-style JSON checkpoint state for interruptible campaigns.

ZMap's ``--status-updates-file``/state machinery lets a 48-hour scan survive
the scanner host dying; this is the reproduction's equivalent.  One JSON
file per shard records the shard coordinates, the position reached in the
shard's permutation stream (the resume offset for
``ScanConfig.skip``), the partial :class:`~repro.core.stats.ScanStats`, the
validated replies so far, and an order-independent SHA-256 digest of the
deduplicated reply set.  Writes are atomic (tmp + rename) so a kill during
a checkpoint write leaves the previous state intact.

**Integrity**: every payload carries a whole-file SHA-256 ``checksum``
(computed over the canonical JSON of everything else), so a torn write
that still parses, a partially flushed file, or hand-editing is detected
on load.  Corrupt or unparseable state files are **quarantined** — renamed
to ``<name>.corrupt`` and reported via a ``checkpoint_corrupt`` event —
and treated as missing, so the campaign re-scans the shard instead of
resuming from (or crashing on) garbage.  The per-shard reply ``digest``
check is kept as a second, content-level line of defence.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.core.scanner import ScanResult

STATE_VERSION = 1

#: Shard status values: a ``partial`` shard resumes from ``position``; a
#: ``done`` shard is never re-executed (zero probes on resume).
PARTIAL = "partial"
DONE = "done"


def _checksum(payload: Dict[str, object]) -> str:
    """Whole-payload SHA-256 over canonical JSON (``checksum`` excluded)."""
    canonical = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class ShardState:
    """The persisted state of one shard."""

    job_id: str
    status: str  # PARTIAL | DONE
    shard: int
    shards: int
    position: int  # shard-stream positions consumed (resume offset)
    result: ScanResult
    digest: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": STATE_VERSION,
            "job_id": self.job_id,
            "status": self.status,
            "shard": self.shard,
            "shards": self.shards,
            "position": self.position,
            "result": self.result.to_dict(),
            "digest": self.digest or self.result.dedup_digest(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardState":
        result = ScanResult.from_dict(data["result"])  # type: ignore[arg-type]
        return cls(
            job_id=str(data["job_id"]),
            status=str(data["status"]),
            shard=int(data["shard"]),  # type: ignore[arg-type]
            shards=int(data["shards"]),  # type: ignore[arg-type]
            position=int(data["position"]),  # type: ignore[arg-type]
            result=result,
            digest=str(data.get("digest", "")),
        )


def _filename(job_id: str) -> str:
    """A filesystem-safe name for a shard state file."""
    safe = job_id.replace("/", "-").replace(":", "_")
    return f"shard-{safe}.json"


class CheckpointStore:
    """A directory of per-shard state files plus one campaign manifest.

    ``on_event`` is an optional telemetry hook: every state transition the
    store performs (shard write, manifest write, quarantine, clear) is
    reported as one structured-event dict, so checkpoint activity lands in
    the campaign's :class:`~repro.telemetry.events.EventLog` (or a worker's
    local buffer) without the store knowing anything about logging.
    """

    MANIFEST = "campaign.json"

    def __init__(
        self,
        directory: "str | os.PathLike[str]",
        on_event: "Optional[callable]" = None,
        os_layer=None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.on_event = on_event
        #: Durability syscall surface (see :mod:`repro.store.oslayer`);
        #: swapped for a shim by the host fault domain / kill harness.
        from repro.store.oslayer import get_default_os

        self.os = os_layer if os_layer is not None else get_default_os()

    def _event(self, event_type: str, **fields: object) -> None:
        if self.on_event is not None:
            self.on_event({"type": event_type, **fields})

    # -- integrity -------------------------------------------------------------

    def _quarantine(self, path: pathlib.Path, what: str,
                    reason: str) -> None:
        """Move a corrupt state file aside and report it."""
        target = path.with_name(path.name + ".corrupt")
        try:
            path.replace(target)
            quarantined = str(target)
        except OSError:  # pragma: no cover - race with a concurrent writer
            quarantined = ""
        self._event(
            "checkpoint_corrupt",
            file=str(path),
            quarantined=quarantined,
            what=what,
            reason=reason,
        )

    def _load_json(self, path: pathlib.Path,
                   what: str) -> Optional[Dict[str, object]]:
        """Parse + checksum-verify one state file; quarantine on corruption.

        Returns None when the file is absent, wrong-version, or corrupt
        (quarantined).  Payloads without a ``checksum`` field (pre-integrity
        writers) are accepted as-is.
        """
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            data = json.loads(text)
        except ValueError:
            self._quarantine(path, what, "truncated-or-invalid-json")
            return None
        if not isinstance(data, dict):
            self._quarantine(path, what, "not-a-json-object")
            return None
        recorded = data.get("checksum")
        if recorded is not None and recorded != _checksum(data):
            self._quarantine(path, what, "checksum-mismatch")
            return None
        return data

    def _atomic_write(self, path: pathlib.Path,
                      payload: Dict[str, object]) -> None:
        payload["checksum"] = _checksum(payload)
        # Unique tmp name: two workers checkpointing the same shard (a
        # watchdog-abandoned straggler racing its retry) must not clobber
        # each other's half-written tmp files.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        with open(tmp, "wb") as handle:
            self.os.write(handle, json.dumps(payload).encode())
            handle.flush()
            self.os.fsync(handle)
        self.os.replace(tmp, path)

    # -- shard state -----------------------------------------------------------

    def shard_path(self, job_id: str) -> pathlib.Path:
        return self.directory / _filename(job_id)

    def write_shard(self, state: ShardState) -> None:
        """Atomically persist one shard's state (checksummed)."""
        path = self.shard_path(state.job_id)
        self._atomic_write(path, state.to_dict())
        self._event(
            "checkpoint_written",
            job_id=state.job_id,
            status=state.status,
            position=state.position,
            sent=state.result.stats.sent,
        )

    def load_shard(self, job_id: str) -> Optional[ShardState]:
        """Load a shard's state; None if absent, unreadable, or corrupt."""
        path = self.shard_path(job_id)
        data = self._load_json(path, what="shard")
        if data is None or data.get("version") != STATE_VERSION:
            return None
        try:
            state = ShardState.from_dict(data)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "shard", "malformed-state")
            return None
        if state.digest and state.digest != state.result.dedup_digest():
            # Checksum passed but the reply set doesn't hash to the recorded
            # digest: content-level tampering.  Quarantine rather than let a
            # resume silently build on altered replies.
            self._quarantine(path, "shard", "digest-mismatch")
            return None
        return state

    def iter_states(self) -> Iterator[ShardState]:
        for path in sorted(self.directory.glob("shard-*.json")):
            data = self._load_json(path, what="shard")
            if data is None or data.get("version") != STATE_VERSION:
                continue
            try:
                yield ShardState.from_dict(data)
            except (ValueError, KeyError, TypeError):
                self._quarantine(path, "shard", "malformed-state")

    # -- campaign manifest ----------------------------------------------------------

    def write_manifest(self, meta: Dict[str, object]) -> None:
        path = self.directory / self.MANIFEST
        self._atomic_write(path, {"version": STATE_VERSION, **meta})
        self._event("manifest_written", directory=str(self.directory))

    def load_manifest(self) -> Optional[Dict[str, object]]:
        path = self.directory / self.MANIFEST
        data = self._load_json(path, what="manifest")
        if data is None:
            return None
        return data if data.get("version") == STATE_VERSION else None

    def clear(self) -> None:
        """Forget all persisted state (fresh campaign over an old directory)."""
        cleared = 0
        for pattern in ("shard-*.json", "shard-*.json.corrupt"):
            for path in self.directory.glob(pattern):
                path.unlink()
                cleared += 1
        for name in (self.MANIFEST, self.MANIFEST + ".corrupt"):
            target = self.directory / name
            if target.exists():
                target.unlink()
        self._event("checkpoints_cleared", directory=str(self.directory),
                    shards=cleared)
