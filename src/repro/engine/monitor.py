"""ZMap-style periodic status reporting through a pluggable sink.

ZMap prints one status line per second — elapsed, percent complete, send
rate, hit rate, ETA.  The engine's unit of progress is a shard, so the
monitor emits a line as shards start/finish/retry, rate-limited by
``min_interval`` (terminal lines always flush).  The sink is any
``Callable[[str], None]`` — stderr by default, a list's ``append`` in
tests, a logger in services.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional

from repro.engine.planner import ShardJob
from repro.engine.worker import ShardOutcome


def _stderr_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def _hms(seconds: float) -> str:
    seconds = max(0, int(seconds))
    return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"


class ProgressMonitor:
    """Aggregates shard outcomes into ZMap-style status lines."""

    def __init__(
        self,
        sink: Optional[Callable[[str], None]] = None,
        min_interval: float = 0.0,
    ) -> None:
        self.sink = sink or _stderr_sink
        self.min_interval = min_interval
        self._started = 0.0
        self._last_emit = 0.0
        self._total_shards = 0
        self._done = 0
        self._from_checkpoint = 0
        self._sent = 0
        self._sent_total = 0  # includes checkpoint-restored shards
        self._validated = 0
        self._retries = 0
        self.lines: List[str] = []  # retained for tests/inspection

    # -- campaign lifecycle ------------------------------------------------------

    def campaign_started(self, total_shards: int, ranges: int) -> None:
        self._started = time.perf_counter()
        self._total_shards = total_shards
        self._emit(
            f"campaign: {ranges} range(s) in {total_shards} shard(s)",
            force=True,
        )

    def shard_finished(self, outcome: ShardOutcome) -> None:
        self._done += 1
        self._sent += outcome.sent_this_run
        self._sent_total += outcome.result.stats.sent
        self._validated += outcome.result.stats.validated
        if outcome.from_checkpoint:
            self._from_checkpoint += 1
        self._status(force=self._done == self._total_shards)

    def shard_retry(self, job: ShardJob, error: Exception, attempt: int) -> None:
        self._retries += 1
        self._emit(
            f"retry: {job.job_id} attempt {attempt} failed: {error}",
            force=True,
        )

    def campaign_finished(self, wall_seconds: float) -> None:
        self._emit(
            f"done: {self._done}/{self._total_shards} shards "
            f"({self._from_checkpoint} from checkpoint, "
            f"{self._retries} retries) in {_hms(wall_seconds)}; "
            f"sent {self._sent:,} probes",
            force=True,
        )

    # -- formatting ----------------------------------------------------------------

    def _status(self, force: bool = False) -> None:
        elapsed = time.perf_counter() - self._started
        pct = 100.0 * self._done / self._total_shards if self._total_shards else 0.0
        pps = self._sent / elapsed if elapsed > 0 else 0.0
        hit = self._validated / self._sent_total if self._sent_total else 0.0
        remaining = self._total_shards - self._done
        eta = elapsed / self._done * remaining if self._done else 0.0
        self._emit(
            f"{_hms(elapsed)} {pct:3.0f}% "
            f"(shards: {self._done}/{self._total_shards} done); "
            f"send: {self._sent:,} ({pps:,.0f} p/s); "
            f"hits: {self._validated:,} ({hit:.2%}); "
            f"eta {_hms(eta)}",
            force=force,
        )

    def _emit(self, line: str, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        self.lines.append(line)
        self.sink(line)
