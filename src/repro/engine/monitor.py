"""ZMap-style periodic status reporting through a pluggable sink.

ZMap prints one status line per second — elapsed, percent complete, send
rate, hit rate, ETA.  The engine's unit of progress is a shard, so the
monitor emits a line as shards start/finish/retry, rate-limited by
``min_interval`` (terminal lines always flush).  The sink is any
``Callable[[str], None]`` — stderr by default, a list's ``append`` in
tests, a logger in services.

The monitor is a *view* over the campaign's structured
:class:`~repro.telemetry.events.EventLog`: subscribe
:meth:`ProgressMonitor.handle_event` to the log and every status line is
rendered from event records rather than ad-hoc method calls.  With
``json_mode=True`` (the CLI's ``--log-json``) the monitor forwards each
raw event as one JSON line instead of formatting human text.  The legacy
``campaign_started``/``shard_finished``/… methods remain as thin wrappers
that synthesise the equivalent event record, so direct callers and
event-log subscribers render identically.

Retained lines are bounded (``max_lines``) so a 48-hour campaign with
per-shard status output cannot grow the monitor without limit.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.engine.planner import ShardJob
from repro.engine.worker import ShardOutcome
from repro.telemetry.timeseries import sparkline

#: Default retention for :attr:`ProgressMonitor.lines`; old lines fall off
#: the front (the sink already saw them — this is only the in-memory tail).
DEFAULT_MAX_LINES = 2000


def _stderr_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def _hms(seconds: float) -> str:
    seconds = max(0, int(seconds))
    return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"


class ProgressMonitor:
    """Aggregates shard outcomes into ZMap-style status lines."""

    def __init__(
        self,
        sink: Optional[Callable[[str], None]] = None,
        min_interval: float = 0.0,
        max_lines: int = DEFAULT_MAX_LINES,
        json_mode: bool = False,
    ) -> None:
        self.sink = sink or _stderr_sink
        self.min_interval = min_interval
        self.json_mode = json_mode
        self._started = 0.0
        self._last_emit = 0.0
        self._total_shards = 0
        self._done = 0
        self._from_checkpoint = 0
        self._sent = 0
        self._sent_total = 0  # includes checkpoint-restored shards
        self._validated = 0
        self._retries = 0
        #: Per-shard hit rates as they finish — rendered as a sparkline so
        #: a collapsing shard is visible at a glance mid-campaign.
        self._hit_history: Deque[float] = deque(maxlen=32)
        #: Bounded tail of emitted lines, for tests/inspection.
        self.lines: Deque[str] = deque(maxlen=max_lines)

    # -- event dispatch ----------------------------------------------------------

    def handle_event(self, record: Dict[str, object]) -> None:
        """Render one structured event record (the EventLog subscriber).

        Unknown event types are ignored in human mode (checkpoint writes
        and the like are journal detail, not status) and forwarded
        verbatim in JSON mode.
        """
        if self.json_mode:
            self._emit(
                json.dumps(record, sort_keys=True, default=str), force=True
            )
            return
        handler = self._HANDLERS.get(str(record.get("type", "")))
        if handler is not None:
            handler(self, record)

    def _on_campaign_started(self, record: Dict[str, object]) -> None:
        self._started = time.perf_counter()
        self._total_shards = int(record.get("shards", 0))  # type: ignore[arg-type]
        self._emit(
            f"campaign: {record.get('ranges', 0)} range(s) "
            f"in {self._total_shards} shard(s)",
            force=True,
        )

    def _on_shard_finished(self, record: Dict[str, object]) -> None:
        self._done += 1
        self._sent += int(record.get("sent_this_run", 0))  # type: ignore[arg-type]
        self._sent_total += int(record.get("sent", 0))  # type: ignore[arg-type]
        self._validated += int(record.get("validated", 0))  # type: ignore[arg-type]
        if record.get("from_checkpoint"):
            self._from_checkpoint += 1
        shard_sent = int(record.get("sent", 0))  # type: ignore[arg-type]
        if shard_sent:
            self._hit_history.append(
                int(record.get("validated", 0)) / shard_sent  # type: ignore[arg-type]
            )
        self._status(force=self._done == self._total_shards)

    def _on_shard_retry(self, record: Dict[str, object]) -> None:
        self._retries += 1
        self._emit(
            f"retry: {record.get('job_id')} attempt "
            f"{record.get('attempt')} failed: {record.get('error')}",
            force=True,
        )

    def _on_campaign_finished(self, record: Dict[str, object]) -> None:
        wall = float(record.get("wall_seconds", 0.0))  # type: ignore[arg-type]
        self._emit(
            f"done: {self._done}/{self._total_shards} shards "
            f"({self._from_checkpoint} from checkpoint, "
            f"{self._retries} retries) in {_hms(wall)}; "
            f"sent {self._sent:,} probes",
            force=True,
        )

    _HANDLERS = {
        "campaign_started": _on_campaign_started,
        "shard_finished": _on_shard_finished,
        "shard_retry": _on_shard_retry,
        "campaign_finished": _on_campaign_finished,
    }

    # -- campaign lifecycle (legacy direct-call API) -----------------------------

    def campaign_started(self, total_shards: int, ranges: int) -> None:
        self.handle_event(
            {
                "type": "campaign_started",
                "shards": total_shards,
                "ranges": ranges,
            }
        )

    def shard_finished(self, outcome: ShardOutcome) -> None:
        self.handle_event(
            {
                "type": "shard_finished",
                "job_id": outcome.job.job_id,
                "label": outcome.label,
                "shard": outcome.job.config.shard,
                "shards": outcome.job.config.shards,
                "sent_this_run": outcome.sent_this_run,
                "sent": outcome.result.stats.sent,
                "validated": outcome.result.stats.validated,
                "from_checkpoint": outcome.from_checkpoint,
                "attempts": outcome.attempts,
                "worker": outcome.worker,
            }
        )

    def shard_retry(self, job: ShardJob, error: Exception, attempt: int) -> None:
        self.handle_event(
            {
                "type": "shard_retry",
                "job_id": job.job_id,
                "attempt": attempt,
                "error": str(error),
            }
        )

    def campaign_finished(self, wall_seconds: float) -> None:
        self.handle_event(
            {"type": "campaign_finished", "wall_seconds": wall_seconds}
        )

    # -- formatting ----------------------------------------------------------------

    def _status(self, force: bool = False) -> None:
        elapsed = time.perf_counter() - self._started
        pct = 100.0 * self._done / self._total_shards if self._total_shards else 0.0
        pps = self._sent / elapsed if elapsed > 0 else 0.0
        hit = self._validated / self._sent_total if self._sent_total else 0.0
        remaining = self._total_shards - self._done
        eta = elapsed / self._done * remaining if self._done else 0.0
        spark = (
            f" | hit/shard {sparkline(self._hit_history)}"
            if len(self._hit_history) >= 2 else ""
        )
        self._emit(
            f"{_hms(elapsed)} {pct:3.0f}% "
            f"(shards: {self._done}/{self._total_shards} done); "
            f"send: {self._sent:,} ({pps:,.0f} p/s); "
            f"hits: {self._validated:,} ({hit:.2%}); "
            f"eta {_hms(eta)}{spark}",
            force=force,
        )

    def _emit(self, line: str, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        self.lines.append(line)
        self.sink(line)
