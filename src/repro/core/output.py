"""Result output modules (ZMap-style CSV / JSON-lines writers).

ZMap-family scanners stream results through pluggable output modules; the
reproduction provides the two everybody uses — CSV and JSON lines — for
:class:`repro.core.scanner.ScanResult`, periphery censuses, and loop
surveys, so downstream tooling can consume scan output without touching the
Python API.
"""

from __future__ import annotations

import csv
import io
import json
from typing import IO

from repro.core.scanner import ProbeResult, ScanResult
from repro.discovery.periphery import PeripheryCensus
from repro.loop.detector import LoopSurvey


def _probe_row(result: ProbeResult) -> dict:
    return {
        "target": str(result.target),
        "responder": str(result.responder),
        "kind": result.kind.value,
        "icmp_type": result.icmp_type,
        "icmp_code": result.icmp_code,
        "same_slash64": result.same_slash64,
    }


def write_scan_csv(result: ScanResult, stream: IO[str]) -> int:
    """Write one row per validated reply; returns the row count."""
    fields = ["target", "responder", "kind", "icmp_type", "icmp_code",
              "same_slash64"]
    writer = csv.DictWriter(stream, fieldnames=fields)
    writer.writeheader()
    count = 0
    for probe_result in result.results:
        writer.writerow(_probe_row(probe_result))
        count += 1
    return count


def write_scan_jsonl(result: ScanResult, stream: IO[str]) -> int:
    count = 0
    for probe_result in result.results:
        stream.write(json.dumps(_probe_row(probe_result)) + "\n")
        count += 1
    return count


def write_census_csv(census: PeripheryCensus, stream: IO[str]) -> int:
    fields = ["last_hop", "probe_target", "reply_kind", "iid_class", "mac",
              "same_slash64"]
    writer = csv.DictWriter(stream, fieldnames=fields)
    writer.writeheader()
    count = 0
    for record in census.records:
        writer.writerow({
            "last_hop": str(record.last_hop),
            "probe_target": str(record.probe_target),
            "reply_kind": record.reply_kind.value,
            "iid_class": record.iid_class.value,
            "mac": str(record.mac) if record.mac else "",
            "same_slash64": record.same_slash64,
        })
        count += 1
    return count


def write_loops_csv(survey: LoopSurvey, stream: IO[str]) -> int:
    fields = ["last_hop", "probe_target", "iid_class", "same_slash64"]
    writer = csv.DictWriter(stream, fieldnames=fields)
    writer.writeheader()
    count = 0
    for record in survey.records:
        writer.writerow({
            "last_hop": str(record.last_hop),
            "probe_target": str(record.probe_target),
            "iid_class": record.iid_class.value,
            "same_slash64": record.same_slash64,
        })
        count += 1
    return count


def render_csv(writer, payload) -> str:
    """Convenience: run one of the ``write_*`` functions into a string."""
    buffer = io.StringIO()
    writer(payload, buffer)
    return buffer.getvalue()
