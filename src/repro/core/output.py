"""Result output modules (ZMap-style CSV / JSON-lines writers).

ZMap-family scanners stream results through pluggable output modules; the
reproduction provides the two everybody uses — CSV and JSON lines — for
:class:`repro.core.scanner.ScanResult`, periphery censuses, and loop
surveys, so downstream tooling can consume scan output without touching the
Python API.
"""

from __future__ import annotations

import csv
import io
from typing import IO, Iterable

from repro.core.scanner import ScanResult
from repro.discovery.periphery import PeripheryCensus
from repro.loop.detector import LoopSurvey
from repro.store.sink import CsvSink, JsonlSink, probe_row

#: Re-exported for callers that build rows directly (the canonical dict
#: form now lives with the streaming sinks in :mod:`repro.store.sink`).
_probe_row = probe_row


def write_scan_csv(result: ScanResult, stream: IO[str]) -> int:
    """Write one row per validated reply; returns the row count.

    A thin wrapper over :class:`~repro.store.sink.CsvSink` — the streaming
    sink is the single implementation, so one-shot dumps, CLI ``--csv``
    paths, and store-query exports are row-for-row identical by
    construction.
    """
    sink = CsvSink(stream)
    sink.emit_many(result.results)
    sink.close()
    return sink.rows


def write_scan_jsonl(result: ScanResult, stream: IO[str]) -> int:
    sink = JsonlSink(stream)
    sink.emit_many(result.results)
    sink.close()
    return sink.rows


def write_census_csv(census: PeripheryCensus, stream: IO[str]) -> int:
    fields = ["last_hop", "probe_target", "reply_kind", "iid_class", "mac",
              "same_slash64"]
    writer = csv.DictWriter(stream, fieldnames=fields)
    writer.writeheader()
    count = 0
    for record in census.records:
        writer.writerow({
            "last_hop": str(record.last_hop),
            "probe_target": str(record.probe_target),
            "reply_kind": record.reply_kind.value,
            "iid_class": record.iid_class.value,
            "mac": str(record.mac) if record.mac else "",
            "same_slash64": record.same_slash64,
        })
        count += 1
    return count


def write_services_csv(results: Iterable, stream: IO[str]) -> int:
    """One row per service observation across any number of app-scan
    results (the ``services --csv`` export, formerly hand-rolled in the
    CLI).  Banners pass through verbatim — including non-ASCII vendor
    strings — the parity tests cover the round-trip."""
    fields = ["target", "service", "alive", "software", "banner",
              "vendor_hint"]
    writer = csv.DictWriter(stream, fieldnames=fields)
    writer.writeheader()
    count = 0
    for result in results:
        for obs in result.observations:
            writer.writerow({
                "target": str(obs.target),
                "service": obs.service,
                "alive": obs.alive,
                "software": obs.software.banner if obs.software else "",
                "banner": obs.banner,
                "vendor_hint": obs.vendor_hint,
            })
            count += 1
    return count


def write_loops_csv(survey: LoopSurvey, stream: IO[str]) -> int:
    fields = ["last_hop", "probe_target", "iid_class", "same_slash64"]
    writer = csv.DictWriter(stream, fieldnames=fields)
    writer.writeheader()
    count = 0
    for record in survey.records:
        writer.writerow({
            "last_hop": str(record.last_hop),
            "probe_target": str(record.probe_target),
            "iid_class": record.iid_class.value,
            "same_slash64": record.same_slash64,
        })
        count += 1
    return count


def render_csv(writer, payload) -> str:
    """Convenience: run one of the ``write_*`` functions into a string."""
    buffer = io.StringIO()
    writer(payload, buffer)
    return buffer.getvalue()
