"""Stateless probe validation.

A ZMap-family scanner keeps no per-probe state: every mutable field it
controls in a probe (ICMP ident/seq, TCP source port and sequence number,
UDP source port) is derived from a keyed hash of the probe's destination
address.  When a reply (or an ICMPv6 error quoting the probe) comes back,
re-deriving the hash tells the scanner whether the packet belongs to this
scan — dropping spoofed or stale traffic without a lookup table.

The key is a per-scan random secret; an off-path attacker who cannot observe
probes cannot forge validating replies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.siphash import SipKey
from repro.net.addr import IPv6Addr


@dataclass(frozen=True)
class ProbeFields:
    """The validator-derived header fields for one probe destination."""

    ident: int  # 16-bit (ICMP ident / source-port material)
    seq: int  # 16-bit (ICMP seq)
    tcp_seq: int  # 32-bit (TCP sequence)
    sport: int  # 16-bit ephemeral source port (32768..65535)


def seed_secret(seed: int) -> bytes:
    """The deterministic 16-byte validation secret for a scan seed.

    Shared by :func:`repro.discovery.periphery.discover` and the
    orchestration engine's :class:`~repro.engine.planner.ProbeSpec` so that
    sharded and single-shot scans of the same seed validate identically.
    """
    return (((seed * 0x9E3779B9) & ((1 << 128) - 1)) or 1).to_bytes(16, "little")


class Validator:
    """Derives and checks per-destination probe fields from a scan secret."""

    def __init__(self, secret: bytes | None = None) -> None:
        if secret is None:
            secret = os.urandom(16)
        if len(secret) != 16:
            raise ValueError("validation secret must be 16 bytes")
        self.secret = secret
        self._key = SipKey(secret)
        #: (value, tag) of the most recent derivation.  Probe modules tag
        #: the same destination twice per probe (header fields + payload
        #: tag) and re-derive it once more to validate the usually-immediate
        #: reply, so this one-slot memo saves one to two SipHash runs per
        #: probe on the scan hot path.
        self._last: tuple = (None, 0)
        #: Block-primed tags (see :meth:`prime`); replaced per block.
        self._primed: dict = {}

    def prime(self, values) -> None:
        """Precompute the tags for a block of destination values.

        The batched scan loop primes each target block through the
        vectorised SipHash path; subsequent :meth:`tag` calls for those
        destinations (probe build, reply validation) become dict hits.
        The primed block replaces the previous one, bounding memory.
        """
        self._primed = dict(zip(values, self._key.hash_uints_block(values)))

    def tag(self, dst: IPv6Addr | int) -> int:
        """The 64-bit validation tag for a destination address."""
        value = dst.value if isinstance(dst, IPv6Addr) else dst
        last_value, last_tag = self._last
        if value == last_value:
            return last_tag
        tag = self._primed.get(value)
        if tag is None:
            tag = self._key.hash_uints(value)
        self._last = (value, tag)
        return tag

    def fields(self, dst: IPv6Addr | int) -> ProbeFields:
        tag = self.tag(dst)
        return ProbeFields(
            ident=tag & 0xFFFF,
            seq=(tag >> 16) & 0xFFFF,
            tcp_seq=(tag >> 16) & 0xFFFFFFFF,
            sport=0x8000 | ((tag >> 48) & 0x7FFF),
        )

    def check_echo(self, dst: IPv6Addr, ident: int, seq: int) -> bool:
        fields = self.fields(dst)
        return fields.ident == ident and fields.seq == seq

    def check_tcp(self, dst: IPv6Addr, sport: int, ack: int) -> bool:
        """Validate a SYN-ACK/RST: their ack must be our seq + 1."""
        fields = self.fields(dst)
        return fields.sport == sport and ack == (fields.tcp_seq + 1) & 0xFFFFFFFF

    def check_udp(self, dst: IPv6Addr, sport: int) -> bool:
        return self.fields(dst).sport == sport
