"""ICMPv6 Echo Request probe — the periphery-discovery workhorse.

The ident/seq pair is hash-derived from the destination, and the 8-byte echo
payload carries the full 64-bit validation tag, so both direct Echo Replies
and ICMPv6 errors quoting the probe validate statelessly.

``hop_limit`` is configurable because the routing-loop detector (§VI-B)
probes the same way with crafted hop limits (h and h+2) to elicit Time
Exceeded messages from looping links.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.probes.base import ProbeModule, ProbeReply, ReplyKind
from repro.net.addr import IPv6Addr
from repro.net.packet import (
    DEFAULT_HOP_LIMIT,
    Icmpv6Message,
    Icmpv6Type,
    Packet,
    echo_request,
)


class IcmpEchoProbe(ProbeModule):
    name = "icmpv6-echo"

    def __init__(self, validator, hop_limit: int = DEFAULT_HOP_LIMIT) -> None:
        super().__init__(validator)
        self.hop_limit = hop_limit

    def build(self, src: IPv6Addr, dst: IPv6Addr) -> Packet:
        # One tag derivation serves ident, seq, and the payload; deriving
        # the slices inline skips a ProbeFields allocation per probe.
        tag = self.validator.tag(dst)
        payload = struct.pack("!Q", tag)
        return echo_request(
            src, dst, tag & 0xFFFF, (tag >> 16) & 0xFFFF, payload,
            hop_limit=self.hop_limit,
        )

    def classify(self, packet: Packet) -> Optional[ProbeReply]:
        message = packet.payload
        if not isinstance(message, Icmpv6Message):
            return None
        if message.type == Icmpv6Type.ECHO_REPLY:
            if not self.validator.check_echo(packet.src, message.ident, message.seq):
                return None
            return ProbeReply(
                responder=packet.src,
                target=packet.src,
                kind=ReplyKind.ECHO_REPLY,
                icmp_type=message.type,
            )
        return self._classify_icmp_error(packet)

    def _validates_invoking(self, invoking: Packet) -> bool:
        inner = invoking.payload
        if not isinstance(inner, Icmpv6Message):
            return False
        if inner.type != Icmpv6Type.ECHO_REQUEST:
            return False
        return self.validator.check_echo(invoking.dst, inner.ident, inner.seq)
