"""XMap probe modules.

Each module builds one probe packet per target and classifies candidate
replies statelessly via the scan :class:`repro.core.validate.Validator`.
The ICMPv6 echo module is the paper's workhorse (periphery discovery and the
routing-loop probes); TCP SYN and UDP modules support the service survey.
"""

from repro.core.probes.base import ProbeModule, ProbeReply, ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.probes.tcp import TcpSynProbe
from repro.core.probes.udp import UdpProbe

__all__ = [
    "ProbeModule",
    "ProbeReply",
    "ReplyKind",
    "IcmpEchoProbe",
    "TcpSynProbe",
    "UdpProbe",
]
