"""TCP SYN probe for port-openness scanning (Table VI's first stage)."""

from __future__ import annotations

from typing import Optional

from repro.core.probes.base import ProbeModule, ProbeReply, ReplyKind
from repro.net.addr import IPv6Addr
from repro.net.packet import Packet, TcpFlags, TcpSegment


class TcpSynProbe(ProbeModule):
    name = "tcp-syn"

    def __init__(self, validator, port: int) -> None:
        super().__init__(validator)
        if not 0 < port < 65536:
            raise ValueError(f"bad TCP port {port}")
        self.port = port

    def build(self, src: IPv6Addr, dst: IPv6Addr) -> Packet:
        fields = self.validator.fields(dst)
        segment = TcpSegment(
            sport=fields.sport,
            dport=self.port,
            seq=fields.tcp_seq,
            flags=int(TcpFlags.SYN),
        )
        return Packet(src=src, dst=dst, payload=segment)

    def classify(self, packet: Packet) -> Optional[ProbeReply]:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return self._classify_icmp_error(packet)
        if segment.sport != self.port:
            return None
        if not self.validator.check_tcp(packet.src, segment.dport, segment.ack):
            return None
        if segment.has_flag(TcpFlags.SYN) and segment.has_flag(TcpFlags.ACK):
            kind = ReplyKind.TCP_SYNACK
        elif segment.has_flag(TcpFlags.RST):
            kind = ReplyKind.TCP_RST
        else:
            return None
        return ProbeReply(responder=packet.src, target=packet.src, kind=kind)

    def _validates_invoking(self, invoking: Packet) -> bool:
        inner = invoking.payload
        if not isinstance(inner, TcpSegment) or inner.dport != self.port:
            return False
        fields = self.validator.fields(invoking.dst)
        return inner.sport == fields.sport and inner.seq == fields.tcp_seq
