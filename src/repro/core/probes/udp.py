"""UDP probe with a caller-supplied application payload (DNS, NTP, …)."""

from __future__ import annotations

from typing import Optional

from repro.core.probes.base import ProbeModule, ProbeReply, ReplyKind
from repro.net.addr import IPv6Addr
from repro.net.packet import Packet, UdpDatagram


class UdpProbe(ProbeModule):
    name = "udp"

    def __init__(self, validator, port: int, payload: bytes = b"") -> None:
        super().__init__(validator)
        if not 0 < port < 65536:
            raise ValueError(f"bad UDP port {port}")
        self.port = port
        self.payload = payload

    def build(self, src: IPv6Addr, dst: IPv6Addr) -> Packet:
        fields = self.validator.fields(dst)
        datagram = UdpDatagram(fields.sport, self.port, self.payload)
        return Packet(src=src, dst=dst, payload=datagram)

    def classify(self, packet: Packet) -> Optional[ProbeReply]:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return self._classify_icmp_error(packet)
        if datagram.sport != self.port:
            return None
        if not self.validator.check_udp(packet.src, datagram.dport):
            return None
        return ProbeReply(
            responder=packet.src, target=packet.src, kind=ReplyKind.UDP_REPLY
        )

    def _validates_invoking(self, invoking: Packet) -> bool:
        inner = invoking.payload
        if not isinstance(inner, UdpDatagram) or inner.dport != self.port:
            return False
        return inner.sport == self.validator.fields(invoking.dst).sport
