"""Probe module interface and the reply taxonomy the analyses consume."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.validate import Validator
from repro.net.addr import IPv6Addr
from repro.net.packet import (
    Icmpv6Message,
    Icmpv6Type,
    Packet,
    PacketError,
)


class ReplyKind(Enum):
    """How a target (or an on-path router) answered a probe."""

    ECHO_REPLY = "echo-reply"
    DEST_UNREACHABLE = "dest-unreachable"
    TIME_EXCEEDED = "time-exceeded"
    TCP_SYNACK = "tcp-synack"
    TCP_RST = "tcp-rst"
    UDP_REPLY = "udp-reply"
    PORT_UNREACHABLE = "port-unreachable"

    @property
    def is_error(self) -> bool:
        return self in (
            ReplyKind.DEST_UNREACHABLE,
            ReplyKind.TIME_EXCEEDED,
            ReplyKind.PORT_UNREACHABLE,
        )


@dataclass(frozen=True)
class ProbeReply:
    """A validated reply attributed to one probe.

    ``responder`` is who answered (for ICMPv6 errors, the *reporting* device
    — the paper's "last hop"); ``target`` is the original probe destination
    recovered from the quoted invoking packet.
    """

    responder: IPv6Addr
    target: IPv6Addr
    kind: ReplyKind
    icmp_type: int = 0
    icmp_code: int = 0

    @property
    def same_slash64(self) -> bool:
        """Does the responder share the probe target's /64? (Table II)."""
        return self.responder.slash64 == self.target.slash64


class ProbeModule(ABC):
    """Builds probes for targets and validates candidate replies."""

    name: str = "probe"

    def __init__(self, validator: Validator) -> None:
        self.validator = validator

    @abstractmethod
    def build(self, src: IPv6Addr, dst: IPv6Addr) -> Packet:
        """The probe packet for one target."""

    @abstractmethod
    def classify(self, packet: Packet) -> Optional[ProbeReply]:
        """Attribute a received packet to this scan, or return None."""

    # -- shared ICMPv6-error handling ----------------------------------------

    def _classify_icmp_error(self, packet: Packet) -> Optional[ProbeReply]:
        """Validate an ICMPv6 error by re-deriving fields for the quoted
        invoking packet's destination (works for every probe type, since the
        error quotes our own probe)."""
        message = packet.payload
        if not isinstance(message, Icmpv6Message) or not message.is_error:
            return None
        try:
            invoking = Packet.decode(message.invoking)
        except PacketError:
            return None
        if not self._validates_invoking(invoking):
            return None
        if message.type == Icmpv6Type.DEST_UNREACHABLE:
            kind = (
                ReplyKind.PORT_UNREACHABLE
                if message.code == 4
                else ReplyKind.DEST_UNREACHABLE
            )
        elif message.type == Icmpv6Type.TIME_EXCEEDED:
            kind = ReplyKind.TIME_EXCEEDED
        else:
            return None
        return ProbeReply(
            responder=packet.src,
            target=invoking.dst,
            kind=kind,
            icmp_type=message.type,
            icmp_code=message.code,
        )

    @abstractmethod
    def _validates_invoking(self, invoking: Packet) -> bool:
        """Is the quoted invoking packet one of this module's probes?"""
