"""Scanner block/allow lists as binary prefix tries.

ZMap/XMap exclude reserved space and operator opt-outs with a blocklist, and
can be restricted to an allowlist.  The semantics implemented here mirror
ZMap's: an address may be probed iff it is covered by the allowlist (or no
allowlist is configured) and not covered by the blocklist; the most-specific
covering entry wins when the same tree holds both.

The tries store :class:`repro.net.addr.IPv6Prefix` entries and answer
point-containment queries in O(prefix length).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.lpm import PrefixTrie


class PrefixSet:
    """A set of IPv6 prefixes with covering-prefix queries.

    A thin wrapper over the shared :class:`repro.net.lpm.PrefixTrie` — the
    same walk the forwarding tables use, storing only membership.
    """

    def __init__(self, prefixes: Iterable[IPv6Prefix | str] = ()) -> None:
        self._trie: PrefixTrie[None] = PrefixTrie()
        for prefix in prefixes:
            self.add(prefix)

    def add(self, prefix: IPv6Prefix | str) -> None:
        if isinstance(prefix, str):
            prefix = IPv6Prefix.from_string(prefix)
        self._trie.set(prefix, None)

    def covering(self, addr: IPv6Addr | int) -> Optional[IPv6Prefix]:
        """The most specific stored prefix covering ``addr``, or None."""
        entry = self._trie.longest(addr)
        return None if entry is None else entry[0]

    def __contains__(self, addr: IPv6Addr | int) -> bool:
        return self.covering(addr) is not None

    def __iter__(self) -> Iterator[IPv6Prefix]:
        for prefix, _value in self._trie.items():
            yield prefix

    def __len__(self) -> int:
        return len(self._trie)


#: Address space a research scanner must never probe: unspecified/loopback,
#: IPv4-mapped, unique-local, link-local, and multicast.
DEFAULT_BLOCKED = (
    "::/8",
    "::ffff:0:0/96",
    "fc00::/7",
    "fe80::/10",
    "ff00::/8",
)


def parse_conf(text: str) -> List[IPv6Prefix]:
    """Parse a ZMap-style blocklist/allowlist file.

    One prefix per line; ``#`` starts a comment (full-line or trailing);
    blank lines are ignored.  A bare address is treated as a /128.
    """
    prefixes: List[IPv6Prefix] = []
    for line_number, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "/" not in line:
            line = f"{line}/128"
        try:
            prefixes.append(IPv6Prefix.from_string(line))
        except Exception as exc:
            raise ValueError(
                f"blocklist line {line_number}: {raw!r}: {exc}"
            ) from exc
    return prefixes


@dataclass(frozen=True)
class BlockDecision:
    """Why an address was (dis)allowed — the telemetry-facing verdict.

    ``reason`` is one of ``"allowed"``, ``"blocked"`` (a blocklist entry
    won), or ``"outside-allowlist"`` (an allowlist is configured and no
    entry covers the address).  ``rule`` is the winning prefix when one
    exists, so veto counters can be labelled per blocklist entry the way
    ZMap's blocklist-hit stats are.
    """

    allowed: bool
    reason: str
    rule: Optional[IPv6Prefix] = None


class Blocklist:
    """Combined allow/block policy for probe targets."""

    def __init__(
        self,
        blocked: Iterable[IPv6Prefix | str] = DEFAULT_BLOCKED,
        allowed: Iterable[IPv6Prefix | str] | None = None,
    ) -> None:
        self.blocked = PrefixSet(blocked)
        self.allowed = PrefixSet(allowed) if allowed is not None else None

    @classmethod
    def from_files(
        cls,
        blocked_path: str | None = None,
        allowed_path: str | None = None,
        include_defaults: bool = True,
    ) -> "Blocklist":
        """Build the policy from ZMap-style conf files."""
        blocked: List[IPv6Prefix | str] = (
            list(DEFAULT_BLOCKED) if include_defaults else []
        )
        if blocked_path is not None:
            with open(blocked_path) as handle:
                blocked.extend(parse_conf(handle.read()))
        allowed = None
        if allowed_path is not None:
            with open(allowed_path) as handle:
                allowed = parse_conf(handle.read())
        return cls(blocked=blocked, allowed=allowed)

    def is_allowed(self, addr: IPv6Addr | int) -> bool:
        return self.check(addr).allowed

    def check(self, addr: IPv6Addr | int) -> BlockDecision:
        """Like :meth:`is_allowed`, but says which rule decided and why."""
        block_hit = self.blocked.covering(addr)
        allow_hit = self.allowed.covering(addr) if self.allowed else None
        if self.allowed is not None and allow_hit is None:
            return BlockDecision(False, "outside-allowlist")
        if block_hit is None:
            return BlockDecision(True, "allowed", allow_hit)
        if allow_hit is None:
            return BlockDecision(False, "blocked", block_hit)
        # Both lists cover the address: the more specific entry wins, the
        # blocklist winning ties (safety first).
        if allow_hit.length > block_hit.length:
            return BlockDecision(True, "allowed", allow_hit)
        return BlockDecision(False, "blocked", block_hit)
