"""Scan statistics and the feasibility projections of §III-B."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ScanStats:
    """Counters the engine maintains over one scan."""

    sent: int = 0
    blocked: int = 0
    received: int = 0
    validated: int = 0
    discarded: int = 0
    virtual_start: float = 0.0
    virtual_end: float = 0.0
    wall_seconds: float = 0.0

    _COUNTERS = ("sent", "blocked", "received", "validated", "discarded")

    @property
    def has_window(self) -> bool:
        """Did this scan see any activity at all?  Fresh stats carry a
        meaningless (0.0, 0.0) virtual window that must not clamp a merge."""
        return bool(
            self.sent or self.received
            or self.virtual_start or self.virtual_end
        )

    def merge(self, other: "ScanStats") -> "ScanStats":
        """Fold another shard's counters into this one (in place).

        Counters sum; the virtual window widens to min(start)/max(end) of
        the two (ignoring sides that never ran); ``wall_seconds`` sums, i.e.
        it becomes aggregate worker-seconds, not campaign wall-clock.
        """
        if other.has_window:
            if self.has_window:
                self.virtual_start = min(self.virtual_start, other.virtual_start)
                self.virtual_end = max(self.virtual_end, other.virtual_end)
            else:
                self.virtual_start = other.virtual_start
                self.virtual_end = other.virtual_end
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.wall_seconds += other.wall_seconds
        return self

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready view (checkpoint files, status lines)."""
        return {
            "sent": self.sent,
            "blocked": self.blocked,
            "received": self.received,
            "validated": self.validated,
            "discarded": self.discarded,
            "virtual_start": self.virtual_start,
            "virtual_end": self.virtual_end,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ScanStats":
        return cls(
            sent=int(data.get("sent", 0)),
            blocked=int(data.get("blocked", 0)),
            received=int(data.get("received", 0)),
            validated=int(data.get("validated", 0)),
            discarded=int(data.get("discarded", 0)),
            virtual_start=float(data.get("virtual_start", 0.0)),
            virtual_end=float(data.get("virtual_end", 0.0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )

    @property
    def virtual_seconds(self) -> float:
        return max(0.0, self.virtual_end - self.virtual_start)

    @property
    def hit_rate(self) -> float:
        return self.validated / self.sent if self.sent else 0.0

    @property
    def virtual_pps(self) -> float:
        return self.sent / self.virtual_seconds if self.virtual_seconds else 0.0

    @property
    def wall_pps(self) -> float:
        return self.sent / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        return (
            f"sent={self.sent} blocked={self.blocked} validated={self.validated} "
            f"hit-rate={self.hit_rate:.4%} virtual-pps={self.virtual_pps:,.0f}"
        )


#: Bytes on the wire for a minimal ICMPv6 echo probe (IPv6 40 + ICMP 8 + tag 8),
#: plus Ethernet framing (14 header + 4 FCS + 8 preamble + 12 IFG).
PROBE_WIRE_BYTES = 56 + 38


def probes_per_second(bandwidth_bps: float) -> float:
    """How many echo probes a given uplink sustains (§III-B arithmetic)."""
    return bandwidth_bps / (PROBE_WIRE_BYTES * 8)


def scan_duration_seconds(window_bits: int, bandwidth_bps: float) -> float:
    """Projected wall-clock to cover a 2^window_bits sub-prefix space.

    The paper's §III-B feasibility claims: at 1 Gbps, all /64 sub-prefixes of
    a /24 block (2^40) take ~8 days and all /60 sub-prefixes (2^36) ~14 hours.
    """
    return (1 << window_bits) / probes_per_second(bandwidth_bps)


@dataclass
class FeasibilityRow:
    """One row of the §III-B projection table."""

    label: str
    window_bits: int
    bandwidth_bps: float
    seconds: float = field(init=False)

    def __post_init__(self) -> None:
        self.seconds = scan_duration_seconds(self.window_bits, self.bandwidth_bps)

    @property
    def human(self) -> str:
        seconds = self.seconds
        if seconds >= 86400:
            return f"{seconds / 86400:.1f} days"
        if seconds >= 3600:
            return f"{seconds / 3600:.1f} hours"
        return f"{seconds:.0f} s"
