"""Scan statistics and the feasibility projections of §III-B."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ScanStats:
    """Counters the engine maintains over one scan."""

    sent: int = 0
    blocked: int = 0
    received: int = 0
    validated: int = 0
    discarded: int = 0
    virtual_start: float = 0.0
    virtual_end: float = 0.0
    wall_seconds: float = 0.0

    @property
    def virtual_seconds(self) -> float:
        return max(0.0, self.virtual_end - self.virtual_start)

    @property
    def hit_rate(self) -> float:
        return self.validated / self.sent if self.sent else 0.0

    @property
    def virtual_pps(self) -> float:
        return self.sent / self.virtual_seconds if self.virtual_seconds else 0.0

    @property
    def wall_pps(self) -> float:
        return self.sent / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        return (
            f"sent={self.sent} blocked={self.blocked} validated={self.validated} "
            f"hit-rate={self.hit_rate:.4%} virtual-pps={self.virtual_pps:,.0f}"
        )


#: Bytes on the wire for a minimal ICMPv6 echo probe (IPv6 40 + ICMP 8 + tag 8),
#: plus Ethernet framing (14 header + 4 FCS + 8 preamble + 12 IFG).
PROBE_WIRE_BYTES = 56 + 38


def probes_per_second(bandwidth_bps: float) -> float:
    """How many echo probes a given uplink sustains (§III-B arithmetic)."""
    return bandwidth_bps / (PROBE_WIRE_BYTES * 8)


def scan_duration_seconds(window_bits: int, bandwidth_bps: float) -> float:
    """Projected wall-clock to cover a 2^window_bits sub-prefix space.

    The paper's §III-B feasibility claims: at 1 Gbps, all /64 sub-prefixes of
    a /24 block (2^40) take ~8 days and all /60 sub-prefixes (2^36) ~14 hours.
    """
    return (1 << window_bits) / probes_per_second(bandwidth_bps)


@dataclass
class FeasibilityRow:
    """One row of the §III-B projection table."""

    label: str
    window_bits: int
    bandwidth_bps: float
    seconds: float = field(init=False)

    def __post_init__(self) -> None:
        self.seconds = scan_duration_seconds(self.window_bits, self.bandwidth_bps)

    @property
    def human(self) -> str:
        seconds = self.seconds
        if seconds >= 86400:
            return f"{seconds / 86400:.1f} days"
        if seconds >= 3600:
            return f"{seconds / 3600:.1f} hours"
        return f"{seconds:.0f} s"
