"""Full-cycle scan-space permutation via a multiplicative group mod a prime.

This is XMap's address-generation design (inherited from ZMap, generalised
from the fixed 2^32+15 prime to arbitrary scan-space sizes): pick the
smallest prime ``p`` larger than the space size ``N``, take a random
primitive root ``g`` of Z_p*, and walk ``x → x·g mod p`` starting from a
random element.  The walk visits every element of ``{1, …, p−1}`` exactly
once per cycle; elements larger than ``N`` are skipped, leaving a uniform
pseudorandom permutation of ``{0, …, N−1}`` that needs O(1) state.

Because the full cycle is a single orbit, sharding is positional (as in
ZMap): shard ``i`` of ``k`` starts at ``s·g^i`` and steps by ``g^k``,
partitioning the orbit into ``k`` interleaved, disjoint, jointly exhaustive
subsequences — the property the sharding tests verify.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.primes import factorize, next_prime, primitive_root

#: Above this size the prime search / factorisation cost is not worth it and
#: :func:`repro.core.permutation.make_permutation` switches to the Feistel
#: construction instead.
MAX_CYCLIC_BITS = 72


class CyclicGroupPermutation:
    """A pseudorandom permutation of ``range(size)`` with O(1) state."""

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 1:
            raise ValueError("permutation size must be positive")
        self.size = size
        self.seed = seed
        rng = random.Random(seed ^ 0xC7C11C)
        if size <= 2:
            # Degenerate spaces: the group machinery adds nothing.
            self._prime = None
            self._generator = None
            self._start = rng.randrange(size)
            return
        self._prime = next_prime(size + 1)
        factors = factorize(self._prime - 1)
        self._generator = primitive_root(self._prime, factors, rng)
        self._start = rng.randrange(1, self._prime)

    @property
    def prime(self) -> int | None:
        return self._prime

    @property
    def generator(self) -> int | None:
        return self._generator

    def indices(self, shard: int = 0, shards: int = 1) -> Iterator[int]:
        """Yield this shard's slice of the permuted index sequence.

        With ``shards == 1`` the full permutation of ``range(size)`` is
        produced.  Shards partition the underlying group orbit positionally,
        so the union over all shards is exactly ``range(size)`` and shards
        are pairwise disjoint.
        """
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} shards")
        if self._prime is None:
            for position, value in enumerate(self._tiny_sequence()):
                if position % shards == shard:
                    yield value
            return
        p, g = self._prime, self._generator
        assert g is not None
        element = self._start * pow(g, shard, p) % p
        step = pow(g, shards, p)
        positions = p - 1  # orbit length of the full group
        count = (positions - shard + shards - 1) // shards
        for _ in range(count):
            if element <= self.size:
                yield element - 1
            element = element * step % p

    def _tiny_sequence(self) -> Iterator[int]:
        for offset in range(self.size):
            yield (self._start + offset) % self.size

    def __iter__(self) -> Iterator[int]:
        return self.indices()

    def __len__(self) -> int:
        return self.size
