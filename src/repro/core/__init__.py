"""XMap: the fast IPv6 network scanner (the paper's primary contribution).

The scanner follows the ZMap architecture the paper extends:

* a **full-cycle pseudorandom permutation** of the scan space, so probes are
  spread across target sub-networks and no state is needed to avoid repeats
  (:mod:`repro.core.cyclic` — multiplicative group mod a prime, XMap's
  GMP-backed design — with :mod:`repro.core.feistel` as the arbitrary-width
  fallback);
* **stateless reply validation** — probe fields are derived from a keyed hash
  of the destination, so replies are attributed without a per-probe table
  (:mod:`repro.core.validate`, keyed by :mod:`repro.core.siphash`);
* **scan-range targeting over arbitrary bit windows** — XMap's headline
  generalisation of ZMap: ``2001:db8::/32-64`` scans every /64 inside the
  /32 (:mod:`repro.core.target`);
* radix-tree block/allow lists (:mod:`repro.core.blocklist`), token-bucket
  rate control (:mod:`repro.core.ratelimit`), sharding (:mod:`repro.core.shard`),
  pluggable probe modules (:mod:`repro.core.probes`), and the engine itself
  (:mod:`repro.core.scanner`).
"""

from repro.core.target import ScanRange, IidStrategy
from repro.core.cyclic import CyclicGroupPermutation
from repro.core.feistel import FeistelPermutation
from repro.core.permutation import make_permutation
from repro.core.blocklist import PrefixSet, Blocklist
from repro.core.scanner import Scanner, ScanConfig, ProbeResult, ScanResult

__all__ = [
    "ScanRange",
    "IidStrategy",
    "CyclicGroupPermutation",
    "FeistelPermutation",
    "make_permutation",
    "PrefixSet",
    "Blocklist",
    "Scanner",
    "ScanConfig",
    "ProbeResult",
    "ScanResult",
]
