"""Backend selection for the scan-space permutation."""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from repro.core.cyclic import MAX_CYCLIC_BITS, CyclicGroupPermutation
from repro.core.feistel import FeistelPermutation


@runtime_checkable
class Permutation(Protocol):
    """What the scanner requires of an address permutation."""

    size: int

    def indices(self, shard: int = 0, shards: int = 1) -> Iterator[int]: ...

    def __iter__(self) -> Iterator[int]: ...


def make_permutation(size: int, seed: int = 0, backend: str = "auto") -> Permutation:
    """Build a permutation of ``range(size)``.

    ``backend`` is ``"cyclic"`` (multiplicative group — XMap's native
    design), ``"feistel"`` (cycle-walking PRP), or ``"auto"``: cyclic up to
    :data:`~repro.core.cyclic.MAX_CYCLIC_BITS` bits of space, Feistel beyond,
    where prime search and ``p−1`` factorisation stop being cheap.
    """
    if backend == "auto":
        backend = "cyclic" if size.bit_length() <= MAX_CYCLIC_BITS else "feistel"
    if backend == "cyclic":
        return CyclicGroupPermutation(size, seed)
    if backend == "feistel":
        return FeistelPermutation(size, seed)
    raise ValueError(f"unknown permutation backend {backend!r}")
