"""Scanner adaptation under hostile substrates: AIMD rate control and
per-target retransmission.

ZMap and XMap both adapt to the network pushing back: when ICMP rate
limiting or congestion collapses the reply rate, the scanner slows down
(multiplicative decrease) and creeps back toward its configured budget
once replies recover (additive increase) — the classic AIMD loop.  The
:class:`AdaptiveRateController` reproduces that against the virtual clock:
it watches the validated-reply rate over fixed windows of targets, keeps
an EMA baseline of "healthy" response, and drives the
:class:`~repro.core.ratelimit.VirtualPacer` rate accordingly.

:class:`RetransmitPolicy` is the per-target half: a target that produced
zero validated replies gets up to N retries, each preceded by a jittered
exponential backoff on the *virtual* clock (so device-side error limiters
see realistic spacing).  It composes with ``probes_per_target`` — copies
are the proactive defence, retransmits the reactive one.

Both knobs are **off by default** and add zero work to the scan hot loop
when disabled (guarded by ``is not None`` checks); the equivalence tests
assert bit-identical results, stats, and metrics against the undecorated
scanner.  Decisions fire per *target*, at identical probe counts, in both
the serial and batched scan loops, so serial/batched bit-identity holds
with adaptation enabled too.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ratelimit import VirtualPacer
    from repro.core.scanner import ScanConfig


class AdaptiveRateController:
    """AIMD probe-rate control on observed reply-rate collapse."""

    #: EMA smoothing for the healthy-reply-rate baseline.
    EMA_ALPHA = 0.2

    def __init__(self, pacer: "VirtualPacer", config: "ScanConfig",
                 metrics) -> None:
        self.pacer = pacer
        self.base_rate = config.rate_pps
        self.window = max(1, config.adaptive_window)
        self.min_rate = max(1.0, min(config.adaptive_min_pps, config.rate_pps))
        self.decrease = config.adaptive_decrease
        self.increase = config.adaptive_increase
        self.collapse = config.adaptive_collapse
        self.rate = config.rate_pps
        self._window_sent = 0
        self._window_validated = 0
        #: EMA of the per-window validated-reply rate; None until the first
        #: full window establishes the baseline.
        self.baseline = None
        self._c_down = metrics.counter("scanner_rate_adjustments",
                                       direction="down")
        self._c_up = metrics.counter("scanner_rate_adjustments",
                                     direction="up")
        self._g_rate = metrics.gauge("scanner_rate_pps")
        # A reused pacer may carry a previous run's adjusted rate.
        pacer.set_rate(self.rate)
        self._g_rate.set(self.rate)

    def record(self, sent: int, validated: int) -> None:
        """Account one target's outcome; adjusts at window boundaries."""
        self._window_sent += sent
        self._window_validated += validated
        if self._window_sent < self.window:
            return
        observed = self._window_validated / self._window_sent
        self._window_sent = 0
        self._window_validated = 0
        if self.baseline is None:
            self.baseline = observed
            return
        if self.baseline > 0 and observed < self.collapse * self.baseline:
            # Reply rate collapsed vs the healthy baseline: back off hard.
            new_rate = max(self.min_rate, self.rate * self.decrease)
            if new_rate != self.rate:
                self.rate = new_rate
                self.pacer.set_rate(new_rate)
                self._c_down.inc()
                self._g_rate.set(new_rate)
            return
        # Healthy window: fold into the baseline, creep back toward budget.
        self.baseline += self.EMA_ALPHA * (observed - self.baseline)
        new_rate = min(self.base_rate,
                       self.rate + self.increase * self.base_rate)
        if new_rate != self.rate:
            self.rate = new_rate
            self.pacer.set_rate(new_rate)
            self._c_up.inc()
            self._g_rate.set(new_rate)


class RetransmitPolicy:
    """Capped per-target retries with jittered exponential virtual backoff.

    The jitter RNG is seeded from the scan seed (never shared with the
    topology or fault RNGs), and is consumed once per retransmit in target
    order — the same stream in serial and batched loops, so retransmission
    preserves serial/batched bit-identity.
    """

    def __init__(self, config: "ScanConfig", metrics) -> None:
        self.limit = config.retransmit
        self.base = config.retransmit_backoff
        self.jitter = config.retransmit_jitter
        self.rng = random.Random((config.seed << 8) ^ 0x5EED)
        from repro.telemetry.metrics import WAIT_BUCKETS

        self._c_retransmits = metrics.counter("scanner_retransmits")
        self._c_recovered = metrics.counter("scanner_retransmit_recoveries")
        self._h_backoff = metrics.histogram(
            "retransmit_backoff_virtual_seconds", bounds=WAIT_BUCKETS
        )

    def backoff(self, attempt: int) -> float:
        """Virtual seconds to wait before retry ``attempt`` (0-based)."""
        delay = self.base * (2.0 ** attempt)
        if self.jitter:
            delay *= 1.0 + self.jitter * self.rng.random()
        return delay

    def on_retransmit(self, delay: float) -> None:
        self._c_retransmits.inc()
        self._h_backoff.observe(delay)

    def on_recovery(self) -> None:
        """A retransmit elicited a validated reply the original missed."""
        self._c_recovered.inc()
