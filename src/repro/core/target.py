"""Scan targets: XMap's arbitrary-bit-window range DSL and IID strategies.

ZMap permutes the rear segment of a 32-bit IPv4 address; XMap's headline
generalisation is permuting *any* bit window of the 128-bit space.  The
paper writes ranges as ``2001:db8::/32-64``: enumerate every /64 sub-prefix
of the /32 (2^32 of them).  A bare prefix ``2001:db8::/32`` means the window
extends to the full 128 bits (end-host scanning).

For each enumerated sub-prefix the scanner needs one concrete probe address;
the interface-identifier *strategy* fills the remaining host bits:

* ``RANDOM`` — a keyed-hash-derived pseudorandom IID per sub-prefix.  This is
  the paper's choice: with 64 host bits a random IID is almost surely
  nonexistent, so the periphery must answer with Destination Unreachable.
* ``LOW_BYTE`` — ``::1``-style IIDs, likelier to hit real (router) addresses;
  the ablation bench contrasts the two.
* ``FIXED`` — a caller-supplied constant IID.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

from repro.core.siphash import SipKey
from repro.net.addr import AddressError, IPv6Addr, IPv6Prefix

_RANGE_RE = re.compile(r"^(?P<prefix>.+)/(?P<start>\d+)(?:-(?P<end>\d+))?$")


class IidStrategy(Enum):
    RANDOM = "random"
    LOW_BYTE = "low-byte"
    FIXED = "fixed"


@dataclass(frozen=True)
class ScanRange:
    """A bit-window scan specification, e.g. every /64 inside a /32."""

    base: IPv6Prefix
    target_length: int

    def __post_init__(self) -> None:
        if not self.base.length <= self.target_length <= 128:
            raise AddressError(
                f"target length /{self.target_length} incompatible with "
                f"base {self.base}"
            )

    @classmethod
    def parse(cls, text: str) -> "ScanRange":
        """Parse ``addr/start-end`` (or ``addr/len`` for full-host scans)."""
        match = _RANGE_RE.match(text.strip())
        if not match:
            raise AddressError(f"malformed scan range {text!r}")
        start = int(match.group("start"))
        end_text = match.group("end")
        end = int(end_text) if end_text is not None else 128
        base = IPv6Prefix.from_string(f"{match.group('prefix')}/{start}")
        return cls(base, end)

    @property
    def window_bits(self) -> int:
        """Bits being enumerated (e.g. 32 for a /32-64 range)."""
        return self.target_length - self.base.length

    @property
    def count(self) -> int:
        """Number of sub-prefixes in the window."""
        return 1 << self.window_bits

    @property
    def host_bits(self) -> int:
        """Bits left for the IID after the enumerated sub-prefix."""
        return 128 - self.target_length

    def subprefix(self, index: int) -> IPv6Prefix:
        return self.base.subprefix(index, self.target_length)

    def index_of(self, addr: IPv6Addr) -> int:
        """The window index of the sub-prefix containing ``addr``."""
        return self.base.subprefix_index(addr, self.target_length)

    def __str__(self) -> str:
        return f"{self.base}-{self.target_length}"


class TargetGenerator:
    """Turns sub-prefix indices into concrete probe addresses.

    IIDs are derived from a keyed hash of the index rather than a mutable
    RNG, keeping target generation stateless and shard-independent: the same
    (seed, index) pair always produces the same probe address, so shards of
    one logical scan agree on targets without coordination.
    """

    def __init__(
        self,
        scan_range: ScanRange,
        strategy: IidStrategy = IidStrategy.RANDOM,
        seed: int = 0,
        fixed_iid: int = 1,
    ) -> None:
        self.range = scan_range
        self.strategy = strategy
        self.fixed_iid = fixed_iid
        self._key = SipKey((seed & (1 << 128) - 1).to_bytes(16, "little"))

    def iid(self, index: int) -> int:
        host_bits = self.range.host_bits
        if host_bits == 0:
            return 0
        mask = (1 << host_bits) - 1
        if self.strategy is IidStrategy.RANDOM:
            wide = self._key.hash_uints(index)
            if host_bits > 64:
                wide |= self._key.hash_uints(index, 1) << 64
            return wide & mask
        if self.strategy is IidStrategy.LOW_BYTE:
            return 1
        return self.fixed_iid & mask

    def address(self, index: int) -> IPv6Addr:
        return self.range.subprefix(index).address(self.iid(index))

    def addresses_block(self, indices: Sequence[int]) -> List[IPv6Addr]:
        """``[self.address(i) for i in indices]``, derived a block at a time.

        For the scanner's common case — RANDOM IIDs with at most 64 host
        bits — the whole block's IID hashes run through the vectorised
        SipHash path and the addresses are assembled directly from
        ``base | (index << host_bits) | iid`` (what ``subprefix().address()``
        computes one object at a time).  Other strategies fall back to the
        scalar path.  Outputs are identical either way.
        """
        rng = self.range
        host_bits = rng.host_bits
        if self.strategy is IidStrategy.RANDOM and 0 < host_bits <= 64:
            base = rng.base.network
            mask = (1 << host_bits) - 1
            hashes = self._key.hash_uints_block(indices)
            return [
                IPv6Addr(base | (index << host_bits) | (wide & mask))
                for index, wide in zip(indices, hashes)
            ]
        return [self.address(index) for index in indices]
