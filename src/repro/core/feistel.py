"""Cycle-walking Feistel permutation over arbitrary-size scan spaces.

The multiplicative-group permutation needs a prime just above the space size
and a factorisation of ``p − 1``; for very wide spaces (beyond
:data:`repro.core.cyclic.MAX_CYCLIC_BITS`) that setup cost is unbounded.
This module provides the standard alternative: a balanced Feistel network
over the smallest even-bit-width domain covering the space, keyed by
SipHash-2-4 round functions, restricted to ``range(size)`` by cycle-walking
(re-encrypting until the value lands inside the target set — guaranteed to
terminate because the permutation is a bijection of the covering domain).

Unlike the cyclic walk this construction gives O(1) *random access*
(``permute(i)`` without iterating), which the shard iterator exploits.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.siphash import SipKey

DEFAULT_ROUNDS = 4


class FeistelPermutation:
    """A keyed pseudorandom permutation of ``range(size)``."""

    def __init__(self, size: int, seed: int = 0, rounds: int = DEFAULT_ROUNDS):
        if size < 1:
            raise ValueError("permutation size must be positive")
        if rounds < 2:
            raise ValueError("at least two Feistel rounds are required")
        self.size = size
        self.rounds = rounds
        self._key = SipKey((seed & (1 << 128) - 1).to_bytes(16, "little"))
        half_bits = max(1, ((size - 1).bit_length() + 1) // 2)
        self._half_bits = half_bits
        self._half_mask = (1 << half_bits) - 1
        self._domain = 1 << (2 * half_bits)

    def _encrypt(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for round_index in range(self.rounds):
            f = self._key.hash_uints(round_index, right) & self._half_mask
            left, right = right, left ^ f
        return (left << self._half_bits) | right

    def permute(self, index: int) -> int:
        """The permuted position of ``index`` (random access)."""
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside range({self.size})")
        value = self._encrypt(index)
        while value >= self.size:  # cycle-walk back into the target set
            value = self._encrypt(value)
        return value

    def indices(self, shard: int = 0, shards: int = 1) -> Iterator[int]:
        """Yield this shard's slice of the permuted sequence.

        Shard ``i`` takes counter positions ``i, i+k, i+2k, …`` — disjoint
        across shards and jointly exhaustive, matching the contract of
        :meth:`repro.core.cyclic.CyclicGroupPermutation.indices`.
        """
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} shards")
        for counter in range(shard, self.size, shards):
            yield self.permute(counter)

    def __iter__(self) -> Iterator[int]:
        return self.indices()

    def __len__(self) -> int:
        return self.size
