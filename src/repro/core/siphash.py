"""SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.

ZMap-family scanners are stateless: they encode scan state into probe fields
(ICMP ident/seq, TCP source port/sequence) as a keyed hash of the destination
so a reply can be validated without a per-probe table.  SipHash is the keyed
PRF used for that validation here, and as the round function of the Feistel
permutation fallback.

Two implementations share the reference test vectors:

* :func:`siphash24` — the readable, arbitrary-length byte-string version.
* :class:`SipKey` — the scan hot path.  The scanner hashes two to three
  16-byte messages per probe (target IID derivation, probe-field tagging,
  reply validation), always under a per-scan constant key, so ``SipKey``
  precomputes the key schedule once and runs fully inlined rounds on
  128-bit integers with no byte-string construction at all.  Its output is
  bit-identical to ``siphash24`` (asserted in the unit tests).

Reference test vectors from the SipHash paper are checked in the unit tests.
"""

from __future__ import annotations

import struct

try:  # optional acceleration for block hashing; scalar fallback otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None  # type: ignore[assignment]

_MASK = 0xFFFFFFFFFFFFFFFF

#: Below this many values the numpy dispatch overhead beats the win.
_VECTOR_MIN = 8


def _rotl(x: int, b: int) -> int:
    return ((x << b) | (x >> (64 - b))) & _MASK


class SipKey:
    """Precomputed SipHash-2-4 key schedule with inlined integer hashing.

    One probe costs ~10 SipHash rounds; the reference implementation spends
    most of that in Python function-call overhead (`sipround`, `_rotl`) and
    byte-string packing.  This class keeps the four initial state words and
    hashes 16-byte-encoded integers directly, unrolling every round.
    """

    __slots__ = ("key", "_v0", "_v1", "_v2", "_v3")

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("SipHash key must be exactly 16 bytes")
        self.key = key
        k0, k1 = struct.unpack("<QQ", key)
        self._v0 = k0 ^ 0x736F6D6570736575
        self._v1 = k1 ^ 0x646F72616E646F6D
        self._v2 = k0 ^ 0x6C7967656E657261
        self._v3 = k1 ^ 0x7465646279746573

    def hash_uints(self, *parts: int) -> int:
        """SipHash-2-4 over ``parts`` each encoded as 16 LE bytes.

        Bit-identical to ``siphash24(key, b"".join(p.to_bytes(16, "little")
        for p in parts))`` — the words of each 128-bit part are fed through
        two compression rounds apiece, then the standard length-tagged tail
        block and four finalization rounds run.
        """
        M = _MASK
        v0 = self._v0
        v1 = self._v1
        v2 = self._v2
        v3 = self._v3
        for part in parts:
            for m in ((part & M), (part >> 64) & M):
                v3 ^= m
                # two compression rounds, unrolled
                v0 = (v0 + v1) & M
                v1 = ((v1 << 13) | (v1 >> 51)) & M
                v1 ^= v0
                v0 = ((v0 << 32) | (v0 >> 32)) & M
                v2 = (v2 + v3) & M
                v3 = ((v3 << 16) | (v3 >> 48)) & M
                v3 ^= v2
                v0 = (v0 + v3) & M
                v3 = ((v3 << 21) | (v3 >> 43)) & M
                v3 ^= v0
                v2 = (v2 + v1) & M
                v1 = ((v1 << 17) | (v1 >> 47)) & M
                v1 ^= v2
                v2 = ((v2 << 32) | (v2 >> 32)) & M
                v0 = (v0 + v1) & M
                v1 = ((v1 << 13) | (v1 >> 51)) & M
                v1 ^= v0
                v0 = ((v0 << 32) | (v0 >> 32)) & M
                v2 = (v2 + v3) & M
                v3 = ((v3 << 16) | (v3 >> 48)) & M
                v3 ^= v2
                v0 = (v0 + v3) & M
                v3 = ((v3 << 21) | (v3 >> 43)) & M
                v3 ^= v0
                v2 = (v2 + v1) & M
                v1 = ((v1 << 17) | (v1 >> 47)) & M
                v1 ^= v2
                v2 = ((v2 << 32) | (v2 >> 32)) & M
                v0 ^= m
        # Tail block: the input is a whole number of 8-byte words, so the
        # tail carries only the length byte (total bytes mod 256) << 56.
        m = ((len(parts) << 4) & 0xFF) << 56
        v3 ^= m
        v0 = (v0 + v1) & M
        v1 = ((v1 << 13) | (v1 >> 51)) & M
        v1 ^= v0
        v0 = ((v0 << 32) | (v0 >> 32)) & M
        v2 = (v2 + v3) & M
        v3 = ((v3 << 16) | (v3 >> 48)) & M
        v3 ^= v2
        v0 = (v0 + v3) & M
        v3 = ((v3 << 21) | (v3 >> 43)) & M
        v3 ^= v0
        v2 = (v2 + v1) & M
        v1 = ((v1 << 17) | (v1 >> 47)) & M
        v1 ^= v2
        v2 = ((v2 << 32) | (v2 >> 32)) & M
        v0 = (v0 + v1) & M
        v1 = ((v1 << 13) | (v1 >> 51)) & M
        v1 ^= v0
        v0 = ((v0 << 32) | (v0 >> 32)) & M
        v2 = (v2 + v3) & M
        v3 = ((v3 << 16) | (v3 >> 48)) & M
        v3 ^= v2
        v0 = (v0 + v3) & M
        v3 = ((v3 << 21) | (v3 >> 43)) & M
        v3 ^= v0
        v2 = (v2 + v1) & M
        v1 = ((v1 << 17) | (v1 >> 47)) & M
        v1 ^= v2
        v2 = ((v2 << 32) | (v2 >> 32)) & M
        v0 ^= m
        v2 ^= 0xFF
        for _ in range(4):
            v0 = (v0 + v1) & M
            v1 = ((v1 << 13) | (v1 >> 51)) & M
            v1 ^= v0
            v0 = ((v0 << 32) | (v0 >> 32)) & M
            v2 = (v2 + v3) & M
            v3 = ((v3 << 16) | (v3 >> 48)) & M
            v3 ^= v2
            v0 = (v0 + v3) & M
            v3 = ((v3 << 21) | (v3 >> 43)) & M
            v3 ^= v0
            v2 = (v2 + v1) & M
            v1 = ((v1 << 17) | (v1 >> 47)) & M
            v1 ^= v2
            v2 = ((v2 << 32) | (v2 >> 32)) & M
        return (v0 ^ v1 ^ v2 ^ v3) & M

    def hash_uints_block(self, values) -> list:
        """``[self.hash_uints(v) for v in values]``, vectorised.

        Each value is hashed as one 16-LE-byte message (the single-part
        case the scan hot path uses for IID derivation and probe tagging).
        With numpy available the whole block runs as uint64 lane arithmetic
        — wrapping adds and shifts are exactly the mod-2^64 operations
        SipHash needs, so the outputs are bit-identical to the scalar path
        (asserted in the unit tests).  Without numpy, or for tiny blocks,
        this falls back to the scalar loop.
        """
        n = len(values)
        if _np is None or n < _VECTOR_MIN:
            return [self.hash_uints(v) for v in values]
        M64 = _MASK
        m0 = _np.fromiter((v & M64 for v in values), dtype=_np.uint64,
                          count=n)
        m1 = _np.fromiter(((v >> 64) & M64 for v in values),
                          dtype=_np.uint64, count=n)
        v0 = _np.full(n, self._v0, dtype=_np.uint64)
        v1 = _np.full(n, self._v1, dtype=_np.uint64)
        v2 = _np.full(n, self._v2, dtype=_np.uint64)
        v3 = _np.full(n, self._v3, dtype=_np.uint64)

        def rounds(count: int) -> None:
            nonlocal v0, v1, v2, v3  # in-place array ops rebind the names
            for _ in range(count):
                v0 += v1
                v1[:] = (v1 << 13) | (v1 >> 51)
                v1 ^= v0
                v0[:] = (v0 << 32) | (v0 >> 32)
                v2 += v3
                v3[:] = (v3 << 16) | (v3 >> 48)
                v3 ^= v2
                v0 += v3
                v3[:] = (v3 << 21) | (v3 >> 43)
                v3 ^= v0
                v2 += v1
                v1[:] = (v1 << 17) | (v1 >> 47)
                v1 ^= v2
                v2[:] = (v2 << 32) | (v2 >> 32)

        v3 ^= m0
        rounds(2)
        v0 ^= m0
        v3 ^= m1
        rounds(2)
        v0 ^= m1
        tail = _np.uint64(0x10 << 56)  # length byte: one 16-byte part
        v3 ^= tail
        rounds(2)
        v0 ^= tail
        v2 ^= _np.uint64(0xFF)
        rounds(4)
        return (v0 ^ v1 ^ v2 ^ v3).tolist()


def siphash24(key: bytes, data: bytes) -> int:
    """SipHash-2-4 of ``data`` under a 16-byte ``key``; returns a 64-bit int."""
    if len(key) != 16:
        raise ValueError("SipHash key must be exactly 16 bytes")
    k0, k1 = struct.unpack("<QQ", key)
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    def sipround() -> None:
        nonlocal v0, v1, v2, v3
        v0 = (v0 + v1) & _MASK
        v1 = _rotl(v1, 13)
        v1 ^= v0
        v0 = _rotl(v0, 32)
        v2 = (v2 + v3) & _MASK
        v3 = _rotl(v3, 16)
        v3 ^= v2
        v0 = (v0 + v3) & _MASK
        v3 = _rotl(v3, 21)
        v3 ^= v0
        v2 = (v2 + v1) & _MASK
        v1 = _rotl(v1, 17)
        v1 ^= v2
        v2 = _rotl(v2, 32)

    total = len(data)
    tail_len = total % 8
    body_len = total - tail_len
    for offset in range(0, body_len, 8):
        (m,) = struct.unpack_from("<Q", data, offset)
        v3 ^= m
        sipround()
        sipround()
        v0 ^= m

    tail = data[body_len:] + b"\x00" * (7 - tail_len) + bytes([total & 0xFF])
    (m,) = struct.unpack("<Q", tail)
    v3 ^= m
    sipround()
    sipround()
    v0 ^= m

    v2 ^= 0xFF
    for _ in range(4):
        sipround()
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK


def keyed_uint(key: bytes, *parts: int) -> int:
    """SipHash over a tuple of integers, each encoded as 16 LE bytes.

    Convenience wrapper used by the validator and the Feistel rounds; 16
    bytes covers full 128-bit address values.  Hot loops that hash many
    values under one key should hold a :class:`SipKey` instead — this
    wrapper re-derives the key schedule every call.
    """
    return SipKey(key).hash_uints(*parts)
