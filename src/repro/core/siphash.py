"""SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.

ZMap-family scanners are stateless: they encode scan state into probe fields
(ICMP ident/seq, TCP source port/sequence) as a keyed hash of the destination
so a reply can be validated without a per-probe table.  SipHash is the keyed
PRF used for that validation here, and as the round function of the Feistel
permutation fallback.

Reference test vectors from the SipHash paper are checked in the unit tests.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFFFFFFFFFF


def _rotl(x: int, b: int) -> int:
    return ((x << b) | (x >> (64 - b))) & _MASK


def siphash24(key: bytes, data: bytes) -> int:
    """SipHash-2-4 of ``data`` under a 16-byte ``key``; returns a 64-bit int."""
    if len(key) != 16:
        raise ValueError("SipHash key must be exactly 16 bytes")
    k0, k1 = struct.unpack("<QQ", key)
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    def sipround() -> None:
        nonlocal v0, v1, v2, v3
        v0 = (v0 + v1) & _MASK
        v1 = _rotl(v1, 13)
        v1 ^= v0
        v0 = _rotl(v0, 32)
        v2 = (v2 + v3) & _MASK
        v3 = _rotl(v3, 16)
        v3 ^= v2
        v0 = (v0 + v3) & _MASK
        v3 = _rotl(v3, 21)
        v3 ^= v0
        v2 = (v2 + v1) & _MASK
        v1 = _rotl(v1, 17)
        v1 ^= v2
        v2 = _rotl(v2, 32)

    total = len(data)
    tail_len = total % 8
    body_len = total - tail_len
    for offset in range(0, body_len, 8):
        (m,) = struct.unpack_from("<Q", data, offset)
        v3 ^= m
        sipround()
        sipround()
        v0 ^= m

    tail = data[body_len:] + b"\x00" * (7 - tail_len) + bytes([total & 0xFF])
    (m,) = struct.unpack("<Q", tail)
    v3 ^= m
    sipround()
    sipround()
    v0 ^= m

    v2 ^= 0xFF
    for _ in range(4):
        sipround()
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK


def keyed_uint(key: bytes, *parts: int) -> int:
    """SipHash over a tuple of integers, each encoded as 16 LE bytes.

    Convenience wrapper used by the validator and the Feistel rounds; 16
    bytes covers full 128-bit address values.
    """
    data = b"".join(part.to_bytes(16, "little") for part in parts)
    return siphash24(key, data)
