"""Number theory for the cyclic-group permutation.

XMap's address-generation module permutes the scan space by walking a
multiplicative group of integers modulo a prime (the design it inherits from
ZMap, re-implemented over GMP big integers).  Building that group needs three
primitives, implemented here from scratch:

* deterministic Miller–Rabin primality testing (exact below 3.3e24, strong
  pseudoprime bases per Sorenson & Webster; randomised witnesses above);
* Pollard's rho (Brent's variant) integer factorisation, used to factor
  ``p − 1`` when searching for a primitive root;
* primitive-root search: ``g`` generates Z_p* iff ``g^((p−1)/q) != 1`` for
  every prime factor ``q`` of ``p − 1``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

# Deterministic Miller-Rabin witness sets (smallest base sets proven exact
# up to the listed bounds).
_MR_DETERMINISTIC: List[tuple[int, tuple[int, ...]]] = [
    (2047, (2,)),
    (1373653, (2, 3)),
    (9080191, (31, 73)),
    (25326001, (2, 3, 5)),
    (3215031751, (2, 3, 5, 7)),
    (4759123141, (2, 7, 61)),
    (1122004669633, (2, 13, 23, 1662803)),
    (2152302898747, (2, 3, 5, 7, 11)),
    (3474749660383, (2, 3, 5, 7, 11, 13)),
    (341550071728321, (2, 3, 5, 7, 11, 13, 17)),
    (3825123056546413051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318665857834031151167461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
    (
        3317044064679887385961981,
        (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41),
    ),
]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test, deterministic below ~3.3e24."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for bound, bases in _MR_DETERMINISTIC:
        if n < bound:
            return not any(_miller_rabin_witness(n, a, d, r) for a in bases)

    rng = rng or random.Random(n & 0xFFFFFFFF)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """The smallest prime ``>= n``."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def _pollard_rho(n: int, rng: random.Random) -> int:
    """One nontrivial factor of composite odd ``n`` (Brent's cycle finding)."""
    if n % 2 == 0:
        return 2
    while True:
        y = rng.randrange(1, n)
        c = rng.randrange(1, n)
        m = 128
        g, r, q = 1, 1, 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += m
            r *= 2
        if g == n:
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g


def factorize(n: int, rng: random.Random | None = None) -> Dict[int, int]:
    """Prime factorisation ``{prime: exponent}`` via trial division + rho."""
    if n < 1:
        raise ValueError("factorize expects a positive integer")
    rng = rng or random.Random(0xFAC702)
    factors: Dict[int, int] = {}

    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p

    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_rho(m, rng)
        stack.append(d)
        stack.append(m // d)
    return factors


def primitive_root(p: int, factors: Dict[int, int] | None = None,
                   rng: random.Random | None = None) -> int:
    """A generator of the multiplicative group Z_p* for prime ``p``."""
    if p == 2:
        return 1
    if not is_prime(p):
        raise ValueError(f"{p} is not prime")
    order = p - 1
    factors = factors or factorize(order)
    exponents = [order // q for q in factors]
    rng = rng or random.Random(p & 0xFFFFFFFF)
    while True:
        g = rng.randrange(2, p)
        if all(pow(g, e, p) != 1 for e in exponents):
            return g
