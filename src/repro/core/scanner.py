"""The XMap scan engine.

Ties the pieces together: the permutation walks the sub-prefix window in
pseudorandom order (spreading load across target networks, §IV-E), the
target generator fills IIDs, the blocklist vetoes excluded space, the pacer
enforces the probe rate on the virtual clock, the probe module builds and
validates packets, and the engine aggregates :class:`ProbeResult` records.

``wire_mode`` round-trips every probe and reply through the byte-level
codecs, proving the packets the engine reasons about are exactly what a
raw socket would carry; the fast path hands packet objects to the simulator
directly.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.blocklist import Blocklist
from repro.core.permutation import make_permutation
from repro.core.probes.base import ProbeModule, ReplyKind
from repro.core.ratelimit import VirtualPacer
from repro.core.stats import ScanStats
from repro.core.target import IidStrategy, ScanRange, TargetGenerator
from repro.core.validate import Validator
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import Device
from repro.net.network import Network
from repro.net.packet import Packet
from repro.telemetry.metrics import (
    HOP_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
)
from repro.telemetry.trace import ProbeTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.adaptive import RetransmitPolicy
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.store.sink import ResultSink
    from repro.telemetry.trace import ProbeTrace


@dataclass(frozen=True)
class ProbeResult:
    """One validated reply, annotated with the probe that elicited it."""

    target: IPv6Addr
    responder: IPv6Addr
    kind: ReplyKind
    icmp_type: int
    icmp_code: int

    @property
    def same_slash64(self) -> bool:
        return self.responder.slash64 == self.target.slash64

    @property
    def dedup_key(self) -> tuple:
        """The identity used for reply dedup, in-scan and cross-shard."""
        return (self.responder.value, self.target.value, self.kind)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": str(self.target),
            "responder": str(self.responder),
            "kind": self.kind.value,
            "icmp_type": self.icmp_type,
            "icmp_code": self.icmp_code,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProbeResult":
        return cls(
            target=IPv6Addr.from_string(str(data["target"])),
            responder=IPv6Addr.from_string(str(data["responder"])),
            kind=ReplyKind(data["kind"]),
            icmp_type=int(data["icmp_type"]),  # type: ignore[arg-type]
            icmp_code=int(data["icmp_code"]),  # type: ignore[arg-type]
        )


@dataclass
class ScanResult:
    """All validated replies from one scan plus engine statistics."""

    range: ScanRange
    results: List[ProbeResult] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)
    #: Dedup-key cache for :meth:`merge`: the key set plus the results
    #: length it was built against.  Rebuilding the set per merge call made
    #: an N-shard campaign merge O(N²) in total results; the cache makes
    #: the whole merge loop single-pass.  Out-of-band appends to
    #: ``results`` are detected by the length stamp and trigger a rebuild.
    _dedup_cache: Optional[Set[tuple]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _dedup_stamp: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    def unique_responders(self) -> Set[IPv6Addr]:
        return {r.responder for r in self.results}

    def unique_slash64s(self) -> Set[IPv6Prefix]:
        return {r.responder.slash64 for r in self.results}

    def metadata(self) -> Dict[str, object]:
        """ZMap-style scan metadata summary (for logs and status files)."""
        return {
            "range": str(self.range),
            "sub_prefixes": self.range.count,
            "sent": self.stats.sent,
            "blocked": self.stats.blocked,
            "received": self.stats.received,
            "validated": self.stats.validated,
            "hit_rate": self.stats.hit_rate,
            "unique_responders": len(self.unique_responders()),
            "virtual_seconds": self.stats.virtual_seconds,
            "virtual_pps": self.stats.virtual_pps,
            "wall_seconds": self.stats.wall_seconds,
        }

    def by_kind(self) -> Dict[ReplyKind, int]:
        return dict(Counter(result.kind for result in self.results))

    def last_hops(self) -> List[ProbeResult]:
        """Replies that expose a last-hop device (ICMPv6 errors)."""
        return [r for r in self.results if r.kind.is_error]

    def merge(self, other: "ScanResult") -> "ScanResult":
        """Fold another shard's results into this one (in place).

        Replies deduplicate on ``(responder, target, kind)`` — the same key
        the in-scan dedup uses — so merging the shards of one logical scan
        yields exactly the unsharded reply set; stats merge per
        :meth:`ScanStats.merge`.
        """
        if str(other.range) != str(self.range):
            raise ValueError(
                f"cannot merge scan of {other.range} into scan of {self.range}"
            )
        seen = self._dedup_keys()
        for result in other.results:
            if result.dedup_key in seen:
                continue
            seen.add(result.dedup_key)
            self.results.append(result)
        self._dedup_stamp = len(self.results)
        self.stats.merge(other.stats)
        return self

    def _dedup_keys(self) -> Set[tuple]:
        """The cached dedup-key set, rebuilt only if ``results`` changed
        behind the cache's back (e.g. the scanner appending mid-scan)."""
        keys = self._dedup_cache
        if keys is None or self._dedup_stamp != len(self.results):
            keys = {result.dedup_key for result in self.results}
            self._dedup_cache = keys
            self._dedup_stamp = len(self.results)
        return keys

    def dedup_digest(self) -> str:
        """Order-independent SHA-256 over the deduplicated reply set."""
        lines = sorted(
            f"{r.responder}|{r.target}|{r.kind.value}|{r.icmp_type}|{r.icmp_code}"
            for r in self.results
        )
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view, invertible via :meth:`from_dict` (checkpoints)."""
        return {
            "range": str(self.range),
            "results": [result.to_dict() for result in self.results],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScanResult":
        return cls(
            range=ScanRange.parse(str(data["range"])),
            results=[
                ProbeResult.from_dict(item)  # type: ignore[arg-type]
                for item in data.get("results", [])  # type: ignore[union-attr]
            ],
            stats=ScanStats.from_dict(data.get("stats", {})),  # type: ignore[arg-type]
        )


@dataclass
class ScanConfig:
    """Everything that parameterises one scan."""

    scan_range: ScanRange
    rate_pps: float = 25_000.0  # the paper's good-citizen budget (§IV-E)
    seed: int = 0
    iid_strategy: IidStrategy = IidStrategy.RANDOM
    fixed_iid: int = 1
    shard: int = 0
    shards: int = 1
    #: Shard-stream positions (permutation indices, blocked ones included)
    #: to skip before probing — the checkpoint/resume offset.
    skip: int = 0
    #: Copies of the probe sent per target (ZMap's ``--probes``): raises
    #: recall on lossy paths at proportional bandwidth cost.
    probes_per_target: int = 1
    max_probes: Optional[int] = None
    permutation_backend: str = "auto"
    blocklist: Optional[Blocklist] = None
    wire_mode: bool = False
    dedup_replies: bool = True
    #: Collect per-scan telemetry counters/histograms into
    #: :attr:`Scanner.metrics`.  Off buys back the (small) registry cost.
    collect_metrics: bool = True
    #: Probe-lifecycle tracing spec: ``"off"``, ``"all"``, or ``"sample:N"``
    #: (see :class:`repro.telemetry.trace.ProbeTracer`).
    trace: str = "off"
    #: Call the progress hook every N targets instead of per probe, so
    #: checkpoint-freshness bookkeeping doesn't dominate large windows.
    progress_every: int = 1
    #: Resolve forwarding hops through the per-device route flow cache
    #: (:meth:`repro.net.device.Device.flow_entry`).  ``False`` forces every
    #: hop down the engine's slow path — the A/B escape hatch; results are
    #: identical either way (asserted by the equivalence tests).
    flow_cache: bool = True
    #: Targets per block in :meth:`Scanner.run_batched`.
    batch_size: int = 256
    #: Dispatch :meth:`Scanner.run_batched` instead of :meth:`Scanner.run`
    #: (the engine worker and CLI honour this; results are identical).
    batched: bool = False
    #: Forward probe blocks through the columnar engine
    #: (:mod:`repro.net.columnar`): the batched loop paces and builds a
    #: chunk of probes up front, then :meth:`Network.inject_block` advances
    #: them with masked vector ops, ejecting to the scalar engine for
    #: anything stateful.  Implies the batched loop; results are asserted
    #: bit-identical to the scalar oracle by ``tests/test_columnar.py``.
    #: Scans that must observe individual hops (wire mode, probe tracing,
    #: retransmit/adaptive hardening) fall back to the scalar loop, as does
    #: any environment without numpy.
    columnar: bool = False
    #: Deterministic chaos: a :class:`repro.faults.schedule.FaultSchedule`
    #: armed against the network for the duration of the scan (None = no
    #: fault layer at all — the default costs nothing on the hot path).
    fault_schedule: Optional["FaultSchedule"] = None
    #: AIMD rate control (ZMap/XMap-style): multiplicative decrease when
    #: the validated-reply rate collapses below ``adaptive_collapse`` ×
    #: its EMA baseline, additive increase back toward ``rate_pps``.
    #: Off by default; when off the scan is bit-identical to today.
    adaptive_rate: bool = False
    #: Targets per AIMD observation window.
    adaptive_window: int = 256
    #: Floor the adaptive rate never decreases below (pps).
    adaptive_min_pps: float = 100.0
    #: Multiplicative-decrease factor applied on reply-rate collapse.
    adaptive_decrease: float = 0.5
    #: Additive increase per healthy window, as a fraction of ``rate_pps``.
    adaptive_increase: float = 0.05
    #: A window counts as collapsed when its reply rate falls below this
    #: fraction of the EMA baseline.
    adaptive_collapse: float = 0.5
    #: Retransmission policy: max retries for a target whose probes (all
    #: ``probes_per_target`` copies) produced zero validated replies.
    #: 0 disables retransmission entirely (the default).
    retransmit: int = 0
    #: Base virtual-seconds backoff before the first retry (doubles per
    #: attempt, plus jitter).
    retransmit_backoff: float = 0.01
    #: Jitter fraction applied to each backoff (0 = deterministic spacing;
    #: the jitter RNG is seeded from ``seed`` either way).
    retransmit_jitter: float = 0.5
    #: Virtual seconds per time-series bucket (0 disables sampling).  The
    #: sampler rides the pacer's clock and snapshots counter deltas into
    #: :attr:`Scanner.sampler`; shard workers export the series and the
    #: campaign merges them bit-identically (see telemetry/timeseries.py).
    timeseries_interval: float = 0.0
    #: Ring bound on retained buckets per series.
    timeseries_max_buckets: int = 4096


class Scanner:
    """XMap: scans a sub-prefix window of the (simulated) IPv6 Internet."""

    def __init__(
        self,
        network: Network,
        vantage: Device,
        probe: ProbeModule,
        config: ScanConfig,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[ProbeTracer] = None,
        sink: Optional["ResultSink"] = None,
    ) -> None:
        self.network = network
        self.vantage = vantage
        self.probe = probe
        self.config = config
        self.generator = TargetGenerator(
            config.scan_range,
            strategy=config.iid_strategy,
            seed=config.seed,
            fixed_iid=config.fixed_iid,
        )
        #: Telemetry registry: an explicit one wins; otherwise fresh per
        #: scan, or the shared no-op registry when collection is off.
        if metrics is not None:
            self.metrics = metrics
        elif config.collect_metrics:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = NULL_REGISTRY  # type: ignore[assignment]
        #: Probe-lifecycle tracer (off unless configured/injected).
        self.tracer = tracer if tracer is not None else ProbeTracer.from_spec(
            config.trace
        )
        self.pacer = VirtualPacer(network, config.rate_pps,
                                  metrics=self.metrics)
        #: Virtual-clock series sampler (None unless configured).  Created
        #: here, started when the scan loop starts, driven by the pacer.
        self.sampler = None
        if config.timeseries_interval > 0 and self.metrics.enabled:
            from repro.telemetry.timeseries import SeriesSampler

            self.sampler = SeriesSampler(
                self.metrics,
                config.timeseries_interval,
                shards=max(1, config.shards),
                max_buckets=config.timeseries_max_buckets,
            )
        #: Streaming result sink.  When set, validated replies are emitted
        #: to the sink as they are produced *instead of* accumulating in
        #: ``result.results`` — peak resident rows are then bounded by the
        #: sink's own buffering (one segment block for a
        #: :class:`~repro.store.sink.SegmentSink`), not the reply volume.
        self.sink = sink
        self.blocked_count = 0
        #: Shard-stream positions consumed so far (skipped + blocked +
        #: probed) — what a checkpoint records as the resume offset.
        self.position = 0
        #: Result being accumulated by :meth:`run` (live view for hooks).
        self.result: Optional[ScanResult] = None
        #: The armed :class:`~repro.faults.injector.FaultInjector` while a
        #: fault schedule is active (the engine worker harvests its
        #: records); None when the scan runs without a fault layer.
        self.fault_injector: Optional["FaultInjector"] = None
        #: Called after each target is fully processed; the orchestration
        #: engine hangs periodic checkpointing and failure injection here.
        self.on_progress: Optional[Callable[["Scanner"], None]] = None

    @classmethod
    def with_defaults(
        cls,
        network: Network,
        vantage: Device,
        scan_range: ScanRange | str,
        probe: ProbeModule | None = None,
        **config_kwargs,
    ) -> "Scanner":
        """Convenience constructor: echo probe, fresh validator, defaults."""
        if isinstance(scan_range, str):
            scan_range = ScanRange.parse(scan_range)
        if probe is None:
            from repro.core.probes.icmp import IcmpEchoProbe

            probe = IcmpEchoProbe(Validator(b"\x00" * 15 + b"\x01"))
        config = ScanConfig(scan_range=scan_range, **config_kwargs)
        return cls(network, vantage, probe, config)

    # -- target iteration ------------------------------------------------------

    def targets(self) -> Iterator[IPv6Addr]:
        """Probe addresses in permuted order (after blocklist filtering).

        ``config.skip`` fast-forwards past already-scanned positions of this
        shard's stream (checkpoint resume) without evaluating the blocklist
        or generating addresses for them.
        """
        permutation = make_permutation(
            self.config.scan_range.count,
            seed=self.config.seed,
            backend=self.config.permutation_backend,
        )
        blocklist = self.config.blocklist
        metrics = self.metrics
        veto_counters: Dict[tuple, object] = {}  # (reason, rule) -> Counter
        produced = 0
        self.blocked_count = 0
        self.position = 0
        for index in permutation.indices(self.config.shard, self.config.shards):
            if self.position < self.config.skip:
                self.position += 1
                continue
            if self.config.max_probes is not None and produced >= self.config.max_probes:
                return
            self.position += 1
            address = self.generator.address(index)
            if blocklist is not None:
                decision = blocklist.check(address)
                if not decision.allowed:
                    self.blocked_count += 1
                    key = (decision.reason, str(decision.rule))
                    counter = veto_counters.get(key)
                    if counter is None:
                        counter = veto_counters[key] = metrics.counter(
                            "scanner_blocklist_vetoes",
                            reason=decision.reason,
                            rule=str(decision.rule),
                        )
                    counter.inc()  # type: ignore[union-attr]
                    continue
            produced += 1
            yield address

    def _target_blocks(self, size: int) -> Iterator[List[IPv6Addr]]:
        """Blocks of probe addresses with :meth:`targets`-identical state.

        Permutation indices are consumed a block at a time so IID hashing
        can run through the vectorised block path; ``position`` and
        ``blocked_count`` advance exactly as :meth:`targets` advances them
        (asserted by the batched-equivalence tests).  Indices buffered past
        a ``max_probes`` stop are discarded without touching any state —
        the serial iterator never consumes them either.
        """
        config = self.config
        permutation = make_permutation(
            config.scan_range.count,
            seed=config.seed,
            backend=config.permutation_backend,
        )
        blocklist = config.blocklist
        metrics = self.metrics
        veto_counters: Dict[tuple, object] = {}
        produced = 0
        self.blocked_count = 0
        self.position = 0
        skip = config.skip
        max_probes = config.max_probes
        index_iter = permutation.indices(config.shard, config.shards)
        if skip:
            for _index in index_iter:
                self.position += 1
                if self.position >= skip:
                    break
        addresses_block = self.generator.addresses_block
        while True:
            indices = list(islice(index_iter, size))
            if not indices:
                return
            block: List[IPv6Addr] = []
            for address in addresses_block(indices):
                if max_probes is not None and produced >= max_probes:
                    if block:
                        yield block
                    return
                self.position += 1
                if blocklist is not None:
                    decision = blocklist.check(address)
                    if not decision.allowed:
                        self.blocked_count += 1
                        key = (decision.reason, str(decision.rule))
                        counter = veto_counters.get(key)
                        if counter is None:
                            counter = veto_counters[key] = metrics.counter(
                                "scanner_blocklist_vetoes",
                                reason=decision.reason,
                                rule=str(decision.rule),
                            )
                        counter.inc()  # type: ignore[union-attr]
                        continue
                produced += 1
                block.append(address)
            if block:
                yield block

    # -- the scan loop -----------------------------------------------------------

    def run(self) -> ScanResult:
        config = self.config
        if config.columnar:
            # The columnar engine only exists in the batched loop (it needs
            # probe blocks to vectorise over); the results are identical.
            return self.run_batched()
        network = self.network
        saved_flow = network.flow_cache
        network.flow_cache = saved_flow and config.flow_cache
        injector = self._arm_faults()
        try:
            return self._run_serial()
        finally:
            network.flow_cache = saved_flow
            if injector is not None:
                injector.restore()

    # -- resilience layer (all no-ops unless configured) -----------------------

    def _arm_faults(self) -> Optional["FaultInjector"]:
        """Arm the configured fault schedule, if any, against the network."""
        schedule = self.config.fault_schedule
        if schedule is None:
            return None
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            self.network, schedule, metrics=self.metrics,
            protected=(self.vantage.name,),
        )
        injector.arm()
        self.fault_injector = injector
        return injector

    def _hardening(self):
        """(AIMD controller, retransmit policy) per config — None when off."""
        config = self.config
        controller = policy = None
        if config.adaptive_rate:
            from repro.core.adaptive import AdaptiveRateController

            controller = AdaptiveRateController(self.pacer, config,
                                                self.metrics)
        if config.retransmit > 0:
            from repro.core.adaptive import RetransmitPolicy

            policy = RetransmitPolicy(config, self.metrics)
        return controller, policy

    def _retransmit(
        self,
        policy: "RetransmitPolicy",
        target: IPv6Addr,
        source: IPv6Addr,
        seen: Set[tuple],
        result: ScanResult,
        span: Optional["ProbeTrace"],
    ) -> Tuple[int, int, int, int, int]:
        """Retry one silent target; returns (sent, received, validated,
        invalid, duplicate) tallies for the caller to fold into its own
        accounting (``ScanStats`` in the serial loop, block-local ints in
        the batched loop — keeping both loops bit-identical).
        """
        config = self.config
        network = self.network
        metrics = self.metrics
        emit = self.sink.emit if self.sink is not None else result.results.append
        sent = received = validated = invalid = duplicate = 0
        h_hops = metrics.histogram("probe_hops", bounds=HOP_BUCKETS)
        for attempt in range(policy.limit):
            delay = policy.backoff(attempt)
            network.advance(delay)
            send_at = self.pacer.pace()
            probe_packet = self.probe.build(source, target)
            if config.wire_mode:
                probe_packet = Packet.decode(probe_packet.encode())
            sent += 1
            policy.on_retransmit(delay)
            if span is not None:
                span.add("retransmit", send_at, attempt=attempt,
                         backoff=delay)
                network.active_trace = span
            inbox, delivery = network.inject(probe_packet, self.vantage)
            if span is not None:
                network.active_trace = None
            h_hops.observe(delivery.hops)
            recovered = False
            for reply in inbox:
                received += 1
                if config.wire_mode:
                    reply = Packet.decode(reply.encode())
                classified = self.probe.classify(reply)
                if classified is None:
                    invalid += 1
                    if span is not None:
                        span.add("verdict", network.clock,
                                 outcome="validation-failed")
                    continue
                if config.dedup_replies:
                    key = (
                        classified.responder.value,
                        classified.target.value,
                        classified.kind,
                    )
                    if key in seen:
                        duplicate += 1
                        if span is not None:
                            span.add("verdict", network.clock,
                                     outcome="duplicate")
                        continue
                    seen.add(key)
                validated += 1
                recovered = True
                metrics.counter(
                    "scanner_replies",
                    kind=classified.kind.value,
                    icmp_type=classified.icmp_type,
                    icmp_code=classified.icmp_code,
                ).inc()
                if span is not None:
                    span.add(
                        "verdict", network.clock, outcome="validated",
                        kind=classified.kind.value,
                        responder=str(classified.responder),
                    )
                emit(
                    ProbeResult(
                        target=classified.target,
                        responder=classified.responder,
                        kind=classified.kind,
                        icmp_type=classified.icmp_type,
                        icmp_code=classified.icmp_code,
                    )
                )
            if recovered:
                policy.on_recovery()
                break
        return sent, received, validated, invalid, duplicate

    def _run_serial(self) -> ScanResult:
        config = self.config
        result = ScanResult(range=config.scan_range)
        self.result = result
        stats = result.stats
        stats.virtual_start = self.network.clock
        started = time.perf_counter()
        seen: Set[tuple] = set()
        source = self.vantage.primary_address

        # Telemetry: hoist the hot-loop metric objects so the per-probe cost
        # is one bound-method call each, and cache the per-(kind,type,code)
        # reply counters (label lookups are dict builds, too slow per reply).
        metrics = self.metrics
        tracer = self.tracer
        tracing = tracer.enabled
        network = self.network
        sampler = self.sampler
        if sampler is not None:
            # Pin the bucket origin to this scan's starting clock (prebuilt
            # serial networks keep their clock across shards) and let the
            # pacer cut bucket boundaries between probes.
            sampler.start(network.clock)
            self.pacer.sampler = sampler
        c_sent = metrics.counter("scanner_probes_sent")
        c_received = metrics.counter("scanner_replies_received")
        c_validated = metrics.counter("scanner_replies_validated")
        c_invalid = metrics.counter("scanner_replies_discarded",
                                    reason="validation-failed")
        c_duplicate = metrics.counter("scanner_replies_discarded",
                                      reason="duplicate")
        h_hops = metrics.histogram("probe_hops", bounds=HOP_BUCKETS)
        reply_counters: Dict[tuple, object] = {}
        emit = self.sink.emit if self.sink is not None else result.results.append
        stride = max(1, config.progress_every)
        processed = 0
        controller, policy = self._hardening()
        hardened = controller is not None or policy is not None
        sent_before = val_before = 0

        for target in self.targets():
            if hardened:
                sent_before = stats.sent
                val_before = stats.validated
            span = tracer.begin(target) if tracing else None
            if span is not None:
                span.add("generated", network.clock, target=str(target),
                         position=self.position)
                if config.blocklist is not None:
                    span.add("blocklist_check", network.clock,
                             verdict="allowed")
            replies = []
            for _copy in range(max(1, config.probes_per_target)):
                send_at = self.pacer.pace()
                probe_packet = self.probe.build(source, target)
                if config.wire_mode:
                    probe_packet = Packet.decode(probe_packet.encode())
                stats.sent += 1
                c_sent.inc()
                if span is not None:
                    span.add("paced_send", send_at, copy=_copy)
                    network.active_trace = span
                inbox, delivery = network.inject(probe_packet, self.vantage)
                if span is not None:
                    network.active_trace = None
                h_hops.observe(delivery.hops)
                replies.extend(inbox)
            for reply in replies:
                stats.received += 1
                c_received.inc()
                if config.wire_mode:
                    reply = Packet.decode(reply.encode())
                classified = self.probe.classify(reply)
                if classified is None:
                    stats.discarded += 1
                    c_invalid.inc()
                    if span is not None:
                        span.add("verdict", network.clock,
                                 outcome="validation-failed")
                    continue
                if config.dedup_replies:
                    key = (
                        classified.responder.value,
                        classified.target.value,
                        classified.kind,
                    )
                    if key in seen:
                        stats.discarded += 1
                        c_duplicate.inc()
                        if span is not None:
                            span.add("verdict", network.clock,
                                     outcome="duplicate")
                        continue
                    seen.add(key)
                stats.validated += 1
                c_validated.inc()
                reply_key = (
                    classified.kind.value,
                    classified.icmp_type,
                    classified.icmp_code,
                )
                counter = reply_counters.get(reply_key)
                if counter is None:
                    counter = reply_counters[reply_key] = metrics.counter(
                        "scanner_replies",
                        kind=classified.kind.value,
                        icmp_type=classified.icmp_type,
                        icmp_code=classified.icmp_code,
                    )
                counter.inc()  # type: ignore[union-attr]
                if span is not None:
                    span.add(
                        "verdict", network.clock, outcome="validated",
                        kind=classified.kind.value,
                        responder=str(classified.responder),
                    )
                emit(
                    ProbeResult(
                        target=classified.target,
                        responder=classified.responder,
                        kind=classified.kind,
                        icmp_type=classified.icmp_type,
                        icmp_code=classified.icmp_code,
                    )
                )
            if hardened:
                if policy is not None and stats.validated == val_before:
                    d_sent, d_recv, d_val, d_inv, d_dup = self._retransmit(
                        policy, target, source, seen, result, span
                    )
                    stats.sent += d_sent
                    stats.received += d_recv
                    stats.validated += d_val
                    stats.discarded += d_inv + d_dup
                    c_sent.inc(d_sent)
                    c_received.inc(d_recv)
                    c_validated.inc(d_val)
                    c_invalid.inc(d_inv)
                    c_duplicate.inc(d_dup)
                if controller is not None:
                    controller.record(stats.sent - sent_before,
                                      stats.validated - val_before)
            if span is not None:
                tracer.finish(span)
            processed += 1
            if self.on_progress is not None and processed % stride == 0:
                # Keep the trailing counters coherent so progress hooks (and
                # the checkpoints they write) see a consistent snapshot.
                stats.blocked = self.blocked_count
                stats.virtual_end = self.network.clock
                stats.wall_seconds = time.perf_counter() - started
                self.on_progress(self)

        stats.blocked = self.blocked_count
        stats.virtual_end = self.network.clock
        stats.wall_seconds = time.perf_counter() - started
        metrics.gauge("scanner_stream_position").set(self.position)
        metrics.gauge("virtual_clock_seconds").set(network.clock)
        if sampler is not None:
            self.pacer.sampler = None
            sampler.finish(network.clock)
        return result

    def run_batched(self, batch_size: Optional[int] = None) -> ScanResult:
        """Scan in target blocks of ``batch_size`` (default from config).

        Semantically identical to :meth:`run` — same probe order, same
        pace→inject interleaving per probe (device-side ICMPv6 error
        limiters read the virtual clock, so pacing cannot be hoisted out of
        the probe loop), same reply set, same stats and metrics; the
        equivalence tests assert bit-identity.  What batching buys is
        amortisation of everything *around* the probes: targets are pulled
        from the generator/blocklist pipeline a block at a time, the
        sent/received/validated/discarded tallies are kept in local ints and
        flushed to ``ScanStats``/counters once per block, and the progress
        hook fires at block boundaries (where ``position`` is a consistent
        resume offset) instead of every ``progress_every`` targets.
        """
        config = self.config
        size = batch_size if batch_size is not None else config.batch_size
        if size < 1:
            raise ValueError("batch size must be positive")
        network = self.network
        result = ScanResult(range=config.scan_range)
        self.result = result
        stats = result.stats
        stats.virtual_start = network.clock
        started = time.perf_counter()
        seen: Set[tuple] = set()
        source = self.vantage.primary_address

        metrics = self.metrics
        tracer = self.tracer
        tracing = tracer.enabled
        sampler = self.sampler
        sampling = sampler is not None
        if sampler is not None:
            sampler.start(network.clock)
            self.pacer.sampler = sampler
        c_sent = metrics.counter("scanner_probes_sent")
        c_received = metrics.counter("scanner_replies_received")
        c_validated = metrics.counter("scanner_replies_validated")
        c_invalid = metrics.counter("scanner_replies_discarded",
                                    reason="validation-failed")
        c_duplicate = metrics.counter("scanner_replies_discarded",
                                      reason="duplicate")
        h_hops = metrics.histogram("probe_hops", bounds=HOP_BUCKETS)
        reply_counters: Dict[tuple, object] = {}

        # Hot-loop hoists: bound methods looked up once per scan.
        copies = max(1, config.probes_per_target)
        wire = config.wire_mode
        dedup = config.dedup_replies
        vantage = self.vantage
        pace = self.pacer.pace
        build = self.probe.build
        classify = self.probe.classify
        inject = network.inject
        observe_hops = h_hops.observe
        results_append = (
            self.sink.emit if self.sink is not None else result.results.append
        )

        # Vectorised tag priming: when the probe's validator supports block
        # precomputation, each target block's tags are derived in one go.
        primer = getattr(getattr(self.probe, "validator", None), "prime", None)

        controller, policy = self._hardening()
        hardened = controller is not None or policy is not None
        sent_before = val_before = 0

        # The columnar path hands whole probe chunks to the network; paths
        # that must interleave per-probe work with forwarding (wire codecs,
        # lifecycle spans, retransmit/AIMD reactions) keep the scalar loop.
        # Unsafe *network* states (traces, loss models, pending fault
        # transitions, no numpy) degrade inside inject_block itself, so a
        # fault schedule mid-scan simply runs those blocks sequentially.
        use_columnar = (
            config.columnar and not wire and not tracing and not hardened
        )
        flush = (stats, c_sent, c_received, c_validated, c_invalid,
                 c_duplicate)

        saved_flow = network.flow_cache
        network.flow_cache = saved_flow and config.flow_cache
        injector = self._arm_faults()
        try:
            for block in self._target_blocks(size):
                if primer is not None:
                    primer([target.value for target in block])
                if use_columnar:
                    self._columnar_block(
                        block, copies, seen, reply_counters, flush,
                        observe_hops, results_append,
                    )
                    if self.on_progress is not None:
                        stats.blocked = self.blocked_count
                        stats.virtual_end = network.clock
                        stats.wall_seconds = time.perf_counter() - started
                        self.on_progress(self)
                    continue
                n_sent = n_received = n_validated = 0
                n_invalid = n_duplicate = 0
                for target in block:
                    if hardened:
                        sent_before = n_sent
                        val_before = n_validated
                    span = tracer.begin(target) if tracing else None
                    if span is not None:
                        span.add("generated", network.clock,
                                 target=str(target), position=self.position)
                        if config.blocklist is not None:
                            span.add("blocklist_check", network.clock,
                                     verdict="allowed")
                    replies = []
                    for _copy in range(copies):
                        send_at = pace()
                        probe_packet = build(source, target)
                        if wire:
                            probe_packet = Packet.decode(probe_packet.encode())
                        n_sent += 1
                        if span is not None:
                            span.add("paced_send", send_at, copy=_copy)
                            network.active_trace = span
                        inbox, delivery = inject(probe_packet, vantage)
                        if span is not None:
                            network.active_trace = None
                        observe_hops(delivery.hops)
                        replies.extend(inbox)
                    for reply in replies:
                        n_received += 1
                        if wire:
                            reply = Packet.decode(reply.encode())
                        classified = classify(reply)
                        if classified is None:
                            n_invalid += 1
                            if span is not None:
                                span.add("verdict", network.clock,
                                         outcome="validation-failed")
                            continue
                        if dedup:
                            key = (
                                classified.responder.value,
                                classified.target.value,
                                classified.kind,
                            )
                            if key in seen:
                                n_duplicate += 1
                                if span is not None:
                                    span.add("verdict", network.clock,
                                             outcome="duplicate")
                                continue
                            seen.add(key)
                        n_validated += 1
                        reply_key = (
                            classified.kind.value,
                            classified.icmp_type,
                            classified.icmp_code,
                        )
                        counter = reply_counters.get(reply_key)
                        if counter is None:
                            counter = reply_counters[reply_key] = metrics.counter(
                                "scanner_replies",
                                kind=classified.kind.value,
                                icmp_type=classified.icmp_type,
                                icmp_code=classified.icmp_code,
                            )
                        counter.inc()  # type: ignore[union-attr]
                        if span is not None:
                            span.add(
                                "verdict", network.clock, outcome="validated",
                                kind=classified.kind.value,
                                responder=str(classified.responder),
                            )
                        results_append(
                            ProbeResult(
                                target=classified.target,
                                responder=classified.responder,
                                kind=classified.kind,
                                icmp_type=classified.icmp_type,
                                icmp_code=classified.icmp_code,
                            )
                        )
                    if hardened:
                        if policy is not None and n_validated == val_before:
                            deltas = self._retransmit(
                                policy, target, source, seen, result, span
                            )
                            n_sent += deltas[0]
                            n_received += deltas[1]
                            n_validated += deltas[2]
                            n_invalid += deltas[3]
                            n_duplicate += deltas[4]
                        if controller is not None:
                            controller.record(n_sent - sent_before,
                                              n_validated - val_before)
                    if span is not None:
                        tracer.finish(span)
                    if sampling:
                        # The pacer cuts series buckets at the *next*
                        # probe's send, so the block-local tallies must be
                        # flushed per target for the closing bucket to see
                        # current counters — the same accounting points the
                        # serial loop hits per probe (bit-identical series).
                        stats.sent += n_sent
                        stats.received += n_received
                        stats.validated += n_validated
                        stats.discarded += n_invalid + n_duplicate
                        c_sent.inc(n_sent)
                        c_received.inc(n_received)
                        c_validated.inc(n_validated)
                        c_invalid.inc(n_invalid)
                        c_duplicate.inc(n_duplicate)
                        n_sent = n_received = n_validated = 0
                        n_invalid = n_duplicate = 0
                # Flush the block's tallies in one go each.
                stats.sent += n_sent
                stats.received += n_received
                stats.validated += n_validated
                stats.discarded += n_invalid + n_duplicate
                c_sent.inc(n_sent)
                c_received.inc(n_received)
                c_validated.inc(n_validated)
                c_invalid.inc(n_invalid)
                c_duplicate.inc(n_duplicate)
                if self.on_progress is not None:
                    stats.blocked = self.blocked_count
                    stats.virtual_end = network.clock
                    stats.wall_seconds = time.perf_counter() - started
                    self.on_progress(self)
        finally:
            network.flow_cache = saved_flow
            if injector is not None:
                injector.restore()
            if sampler is not None:
                self.pacer.sampler = None
                sampler.finish(network.clock)

        stats.blocked = self.blocked_count
        stats.virtual_end = network.clock
        stats.wall_seconds = time.perf_counter() - started
        metrics.gauge("scanner_stream_position").set(self.position)
        metrics.gauge("virtual_clock_seconds").set(network.clock)
        return result

    def _columnar_block(
        self,
        block: List[IPv6Addr],
        copies: int,
        seen: Set[tuple],
        reply_counters: Dict[tuple, object],
        flush: tuple,
        observe_hops: Callable[[int], None],
        results_append: Callable[[ProbeResult], None],
    ) -> None:
        """Process one target block through :meth:`Network.inject_block`.

        Pacing still happens per probe copy (device-side ICMPv6 limiters
        read the virtual clock, so send times must be exactly the scalar
        loop's); each probe's post-pace clock rides along so the engine
        replays stateful work under the right timestamp.  When a series
        sampler is armed, the block is split into sub-chunks guaranteed not
        to cross the next bucket boundary — a cut can then only fire at a
        chunk's first target, where the flushed counters match what the
        scalar loop's per-target flush would show at the same send.
        """
        config = self.config
        network = self.network
        vantage = self.vantage
        source = vantage.primary_address
        pace = self.pacer.pace
        bucket = self.pacer.bucket
        build = self.probe.build
        classify = self.probe.classify
        inject_block = network.inject_block
        metrics = self.metrics
        dedup = config.dedup_replies
        sampler = self.sampler
        stats, c_sent, c_received, c_validated, c_invalid, c_duplicate = flush

        total = len(block)
        i = 0
        while i < total:
            packets: List[Packet] = []
            clocks: List[float] = []
            chunk_start = i
            while i < total:
                if sampler is not None and i > chunk_start:
                    # Worst-case last send of this target's copies: the
                    # bucket's next send plus one saturated inter-send gap
                    # per copy (burst sends only come sooner).  If that
                    # could reach the boundary, cut the chunk here so the
                    # sampler tick happens with fully flushed counters.
                    horizon = (
                        bucket.next_send_time(network.clock)
                        + copies / self.pacer.rate
                    )
                    if horizon >= sampler.boundary:
                        break
                target = block[i]
                for _copy in range(copies):
                    pace()
                    packets.append(build(source, target))
                    clocks.append(network.clock)
                i += 1
            outcomes = inject_block(packets, vantage, clocks)
            n_received = n_validated = n_invalid = n_duplicate = 0
            r = 0
            for _target in range(chunk_start, i):
                replies = []
                for _copy in range(copies):
                    inbox, delivery = outcomes[r]
                    r += 1
                    observe_hops(delivery.hops)
                    replies.extend(inbox)
                for reply in replies:
                    n_received += 1
                    classified = classify(reply)
                    if classified is None:
                        n_invalid += 1
                        continue
                    if dedup:
                        key = (
                            classified.responder.value,
                            classified.target.value,
                            classified.kind,
                        )
                        if key in seen:
                            n_duplicate += 1
                            continue
                        seen.add(key)
                    n_validated += 1
                    reply_key = (
                        classified.kind.value,
                        classified.icmp_type,
                        classified.icmp_code,
                    )
                    counter = reply_counters.get(reply_key)
                    if counter is None:
                        counter = reply_counters[reply_key] = metrics.counter(
                            "scanner_replies",
                            kind=classified.kind.value,
                            icmp_type=classified.icmp_type,
                            icmp_code=classified.icmp_code,
                        )
                    counter.inc()  # type: ignore[union-attr]
                    results_append(
                        ProbeResult(
                            target=classified.target,
                            responder=classified.responder,
                            kind=classified.kind,
                            icmp_type=classified.icmp_type,
                            icmp_code=classified.icmp_code,
                        )
                    )
            stats.sent += len(packets)
            stats.received += n_received
            stats.validated += n_validated
            stats.discarded += n_invalid + n_duplicate
            c_sent.inc(len(packets))
            c_received.inc(n_received)
            c_validated.inc(n_validated)
            c_invalid.inc(n_invalid)
            c_duplicate.inc(n_duplicate)
