"""Probe pacing.

The paper's measurements cap the scanner at 25 kpps (<15 Mbps) to be a good
Internet citizen; the engine enforces that with a token bucket over the
simulator's *virtual* clock — every send advances time just enough to respect
the configured rate, so device-side ICMPv6 error limiters observe realistic
inter-arrival times without the reproduction actually sleeping.
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket usable against any monotonic clock."""

    def __init__(self, rate_pps: float, burst: float = 1.0) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_pps
        self.burst = max(1.0, burst)
        self._tokens = self.burst
        self._last = 0.0

    def next_send_time(self, now: float) -> float:
        """Earliest time at which the next packet may be sent."""
        tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        if tokens >= 1.0:
            return now
        return now + (1.0 - tokens) / self.rate

    def consume(self, now: float) -> float:
        """Record a send, waiting (virtually) if needed; returns send time.

        This is :meth:`next_send_time` fused with the bookkeeping so the
        scan hot loop pays one refill computation per send, not two.
        """
        tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        if tokens >= 1.0:  # common case: no stall
            self._tokens = tokens - 1.0
            self._last = now
            return now
        send_at = now + (1.0 - tokens) / self.rate
        self._tokens = min(
            self.burst, self._tokens + (send_at - self._last) * self.rate
        ) - 1.0
        self._last = send_at
        return send_at

    def set_rate(self, rate_pps: float) -> None:
        """Retarget the refill rate (adaptive rate control).

        Takes effect from the bucket's last accounting point; accumulated
        tokens are kept.
        """
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_pps


class VirtualPacer:
    """Advances a :class:`repro.net.network.Network` clock at a target pps.

    With a :class:`~repro.telemetry.metrics.MetricsRegistry` attached, the
    pacer counts **stalls** (sends the token bucket had to delay) and
    histograms the virtual wait — the "where does time go" half of the
    scanner's telemetry: at a saturating probe rate every send stalls by
    ~1/rate, while stall-free stretches mean the scan loop, not the rate
    cap, is the bottleneck.
    """

    def __init__(self, network, rate_pps: float, burst: float = 1.0,
                 metrics=None) -> None:
        self.network = network
        self.bucket = TokenBucket(rate_pps, burst)
        if metrics is None:
            from repro.telemetry.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        from repro.telemetry.metrics import WAIT_BUCKETS

        self._stalls = metrics.counter("pacer_stalls")
        self._waits = metrics.histogram("pacer_wait_virtual_seconds",
                                        bounds=WAIT_BUCKETS)
        #: Optional :class:`~repro.telemetry.timeseries.SeriesSampler`.
        #: The pacer is the one place that knows each probe's send time
        #: before any of that probe's counters move, which is exactly
        #: where a series bucket must be cut (see timeseries.py).
        self.sampler = None

    def pace(self) -> float:
        """Account for one probe send; returns the virtual send timestamp."""
        now = self.network.clock
        send_at = self.bucket.consume(now)
        sampler = self.sampler
        if sampler is not None and send_at >= sampler.boundary:
            sampler.tick(send_at)
        if send_at > now:
            self.network.clock = send_at
            self._stalls.inc()
            self._waits.observe(send_at - now)
        return send_at

    def set_rate(self, rate_pps: float) -> None:
        """Retarget the pacing rate mid-scan (AIMD adaptive control)."""
        self.bucket.set_rate(rate_pps)

    @property
    def rate(self) -> float:
        return self.bucket.rate
