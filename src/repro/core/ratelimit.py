"""Probe pacing.

The paper's measurements cap the scanner at 25 kpps (<15 Mbps) to be a good
Internet citizen; the engine enforces that with a token bucket over the
simulator's *virtual* clock — every send advances time just enough to respect
the configured rate, so device-side ICMPv6 error limiters observe realistic
inter-arrival times without the reproduction actually sleeping.
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket usable against any monotonic clock."""

    def __init__(self, rate_pps: float, burst: float = 1.0) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_pps
        self.burst = max(1.0, burst)
        self._tokens = self.burst
        self._last = 0.0

    def next_send_time(self, now: float) -> float:
        """Earliest time at which the next packet may be sent."""
        tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        if tokens >= 1.0:
            return now
        return now + (1.0 - tokens) / self.rate

    def consume(self, now: float) -> float:
        """Record a send, waiting (virtually) if needed; returns send time."""
        send_at = self.next_send_time(now)
        self._tokens = min(
            self.burst, self._tokens + (send_at - self._last) * self.rate
        )
        self._tokens -= 1.0
        self._last = send_at
        return send_at


class VirtualPacer:
    """Advances a :class:`repro.net.network.Network` clock at a target pps."""

    def __init__(self, network, rate_pps: float, burst: float = 1.0) -> None:
        self.network = network
        self.bucket = TokenBucket(rate_pps, burst)

    def pace(self) -> float:
        """Account for one probe send; returns the virtual send timestamp."""
        send_at = self.bucket.consume(self.network.clock)
        if send_at > self.network.clock:
            self.network.clock = send_at
        return send_at
