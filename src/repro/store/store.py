"""The segmented scan-result datastore.

``ResultStore`` turns a directory into a durable, queryable home for scan
results::

    store/
      manifest.json            # the single source of truth (checksummed)
      segments/<name>.seg      # sealed append-only row segments

**Commit protocol** (crash-safe): segment files are sealed first —
flushed, fsynced, and atomically renamed into ``segments/`` — and only
then does the manifest rewrite (itself tmp + fsync + rename, with a
whole-payload SHA-256 like the engine's checkpoints) make them visible.
A crash between the two steps leaves sealed-but-unreferenced *orphan*
files, never a manifest pointing at missing or partial data; orphans are
reported by :meth:`ResultStore.info` and swept by compaction.  Stale
``.tmp`` files from dead writers are deleted on open.

**Integrity**: a torn or hand-edited manifest is quarantined (renamed
``manifest.json.corrupt``) and raises :class:`StoreCorruption` — the store
never guesses.  Segments whose size no longer matches the manifest are
quarantined on open; block-level CRC failures discovered mid-query
quarantine the segment and raise, so a corrupt store can cost a rescan but
can never return a silently wrong row set (mirroring PR 4's checkpoint
quarantine).

**Sharding**: every shard of a campaign writes its own segment under its
own name — writers never contend — and the campaign commits them all in
one manifest rewrite, bound to a named :class:`~repro.store.snapshot.
Snapshot` for the round.

**Compaction** merges segments that share the same snapshot membership
into one, de-duplicating rows on ``ProbeResult.dedup_key`` (first
occurrence in commit order wins — the same key and the same policy as the
in-scan and cross-shard dedup), then atomically swaps the manifest and
deletes the old files.  Queries before, during (readers hold the old
manifest), and after compaction see the same logical row set.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # POSIX: cross-process manifest lock for multi-writer stores
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.core.scanner import ProbeResult
from repro.store.oslayer import OsLayer, get_default_os
from repro.store.segment import (
    DEFAULT_BLOCK_ROWS,
    SegmentCorrupt,
    SegmentReader,
    SegmentWriter,
)
from repro.store.snapshot import Snapshot
from repro.telemetry.metrics import NULL_REGISTRY, MetricsRegistry

MANIFEST_VERSION = 1

#: Fallback same-process locks when ``fcntl`` is unavailable, keyed by the
#: store directory's resolved path.
_FALLBACK_LOCKS: Dict[str, threading.Lock] = {}
_FALLBACK_GUARD = threading.Lock()


class StoreError(RuntimeError):
    """The store was asked something inconsistent (bad name, bad commit)."""


class StoreCorruption(StoreError):
    """On-disk state failed validation; the offender was quarantined."""


def _checksum(payload: Dict[str, object]) -> str:
    canonical = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()




class ResultStore:
    """A directory of sealed result segments plus one atomic manifest."""

    MANIFEST = "manifest.json"
    SEGMENT_DIR = "segments"
    LOCK_FILE = "manifest.lock"

    def __init__(
        self,
        directory: "str | os.PathLike[str]",
        metrics: Optional[MetricsRegistry] = None,
        use_mmap: bool = True,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        os_layer: Optional[OsLayer] = None,
    ) -> None:
        self.directory = Path(directory)
        self.segment_dir = self.directory / self.SEGMENT_DIR
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.use_mmap = use_mmap
        #: Durability syscall surface for manifest writes and the writers
        #: this store hands out; the host fault domain swaps in a shim.
        self.os = os_layer if os_layer is not None else get_default_os()
        #: Optional telemetry hook: corruption/quarantine transitions are
        #: reported as plain event dicts (the campaign routes them into its
        #: EventLog, where ``store_quarantined`` trips the flight recorder).
        self.on_event = on_event
        #: Segment metadata in commit order: name -> meta dict.
        self.segments: Dict[str, Dict[str, object]] = {}
        self.snapshots: Dict[str, Snapshot] = {}
        #: Names quarantined by past integrity failures (manifest-recorded).
        self.quarantined: List[str] = []
        self._commits = 0
        self._sweep_tmp()
        self._load_manifest()
        self._verify_segment_files()

    # -- manifest ----------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def _manifest_payload(self) -> Dict[str, object]:
        return {
            "version": MANIFEST_VERSION,
            "commits": self._commits,
            "segments": [self.segments[name] for name in self.segments],
            "snapshots": [
                snap.to_dict() for snap in self.snapshots.values()
            ],
            "quarantined": list(self.quarantined),
        }

    def _write_manifest(self) -> None:
        payload = self._manifest_payload()
        payload["checksum"] = _checksum(payload)
        tmp = self.manifest_path.with_name(
            f"{self.MANIFEST}.{os.getpid()}.tmp"
        )
        text = json.dumps(payload)
        with open(tmp, "wb") as handle:
            self.os.write(handle, text.encode())
            handle.flush()
            self.os.fsync(handle)
        self.os.replace(tmp, self.manifest_path)
        # A failed directory fsync degrades rename durability (a power cut
        # could resurrect the previous manifest) but the data is intact —
        # observable, not fatal.  Swallowing it silently was the old bug.
        try:
            self.os.fsync_dir(self.directory)
        except OSError as exc:
            self.metrics.counter("store_fsync_failures").inc()
            self._emit_event(
                "store_fsync_failed",
                path=str(self.directory),
                error=str(exc),
            )

    def _emit_event(self, event_type: str, **fields: object) -> None:
        if self.on_event is not None:
            self.on_event({"type": event_type, **fields})

    @contextlib.contextmanager
    def _exclusive(self) -> Iterator[None]:
        """Exclusive manifest section for multi-writer stores.

        Several store handles — different campaigns of one tenant inside a
        daemon, or different processes — may commit into the same
        directory.  The manifest rewrite is read-modify-write, so every
        mutating entry point (:meth:`commit`, :meth:`create_snapshot`,
        :meth:`drop_snapshot`, :meth:`compact`) takes this lock and calls
        :meth:`refresh` before applying its change: commits from other
        handles are picked up instead of silently overwritten.

        ``flock`` excludes other processes *and* other handles in this
        process (the lock rides the open file description, and every entry
        opens its own).  Where ``fcntl`` is unavailable the fallback is a
        per-directory in-process lock — same-process writers stay safe,
        cross-process writers are on their own (as before this lock
        existed).
        """
        if fcntl is not None:
            handle = open(self.directory / self.LOCK_FILE, "a+b")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                yield
            finally:
                handle.close()  # closing the fd releases the flock
        else:  # pragma: no cover - non-POSIX platforms
            key = str(self.directory.resolve())
            with _FALLBACK_GUARD:
                lock = _FALLBACK_LOCKS.setdefault(key, threading.Lock())
            with lock:
                yield

    def refresh(self) -> "ResultStore":
        """Re-read the manifest from disk, dropping in-memory state.

        Multi-writer stores need this: a handle opened before another
        handle's commit still sees the old manifest.  Mutating operations
        refresh automatically (under :meth:`_exclusive`); readers that
        want the latest committed state call it explicitly.
        """
        self.segments = {}
        self.snapshots = {}
        self.quarantined = []
        self._commits = 0
        self._load_manifest()
        return self

    def _quarantine_manifest(self, reason: str) -> None:
        target = self.manifest_path.with_name(self.MANIFEST + ".corrupt")
        try:
            self.manifest_path.replace(target)
        except OSError:  # pragma: no cover - concurrent writer race
            pass
        self.metrics.counter("store_manifest_quarantined").inc()
        self._emit_event("store_quarantined", what="manifest", reason=reason)
        raise StoreCorruption(
            f"store manifest {self.manifest_path} is corrupt ({reason}); "
            f"quarantined to {target.name} — the store opens empty on retry"
        )

    def _load_manifest(self) -> None:
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            return  # a fresh store
        try:
            data = json.loads(text)
        except ValueError:
            self._quarantine_manifest("truncated-or-invalid-json")
            return
        if not isinstance(data, dict):
            self._quarantine_manifest("not-a-json-object")
            return
        recorded = data.get("checksum")
        if recorded is not None and recorded != _checksum(data):
            self._quarantine_manifest("checksum-mismatch")
            return
        if data.get("version") != MANIFEST_VERSION:
            self._quarantine_manifest(
                f"unsupported version {data.get('version')!r}"
            )
            return
        self._commits = int(data.get("commits", 0))
        for meta in data.get("segments", []):
            self.segments[str(meta["name"])] = meta
        for snap_data in data.get("snapshots", []):
            snapshot = Snapshot.from_dict(snap_data)
            self.snapshots[snapshot.name] = snapshot
        self.quarantined = [str(n) for n in data.get("quarantined", [])]

    # -- integrity ---------------------------------------------------------------

    #: Seconds a ``.tmp`` must sit untouched before an open sweeps it.  In
    #: a multi-writer store (many campaigns of one tenant sharing a
    #: directory) a *fresh* tmp belongs to a live writer mid-seal — only
    #: genuinely stale ones are dead-writer litter.
    TMP_SWEEP_GRACE = 300.0

    def _sweep_tmp(self) -> None:
        """Delete stale ``.tmp`` files left by dead writers.

        Age-gated so that opening a store while another handle is sealing
        a segment (the daemon's concurrent-campaigns case) never deletes
        the live writer's tmp out from under its rename.
        """
        import time as _time

        cutoff = _time.time() - self.TMP_SWEEP_GRACE
        for parent, pattern in (
            (self.segment_dir, "*.tmp"),
            (self.directory, f"{self.MANIFEST}.*.tmp"),
        ):
            for path in parent.glob(pattern):
                try:
                    if path.stat().st_mtime > cutoff:
                        continue
                except OSError:
                    continue  # already gone (a racing sweep or seal)
                path.unlink(missing_ok=True)

    def _quarantine_segment(self, name: str, reason: str) -> None:
        """Move a corrupt segment aside, drop it from manifest + snapshots."""
        path = self.segment_path(name)
        if path.exists():
            path.replace(path.with_name(path.name + ".corrupt"))
        self.segments.pop(name, None)
        for snap_name, snapshot in list(self.snapshots.items()):
            if name in snapshot.segments:
                remaining = tuple(s for s in snapshot.segments if s != name)
                self.snapshots[snap_name] = Snapshot(
                    name=snapshot.name,
                    segments=remaining,
                    rows=sum(self._rows_of(s) for s in remaining),
                    meta={**snapshot.meta, "incomplete": reason},
                )
        self.quarantined.append(name)
        self._write_manifest()
        self.metrics.counter("store_segments_quarantined").inc()
        self._emit_event("store_quarantined", what="segment", name=name,
                         reason=reason)

    def _verify_segment_files(self) -> None:
        """Cheap open-time check: every committed segment exists at the
        recorded size.  Full CRC verification happens block-by-block at
        read time (and via :meth:`verify`)."""
        bad: List[Tuple[str, str]] = []
        for name, meta in self.segments.items():
            path = self.segment_path(name)
            try:
                actual = path.stat().st_size
            except FileNotFoundError:
                bad.append((name, "missing-file"))
                continue
            if actual != int(meta.get("bytes", actual)):
                bad.append((name, f"size {actual} != {meta.get('bytes')}"))
        for name, reason in bad:
            self._quarantine_segment(name, reason)
        if bad:
            raise StoreCorruption(
                "corrupt segment(s) quarantined: "
                + ", ".join(f"{n} ({r})" for n, r in bad)
                + " — re-open the store to continue without them"
            )

    def verify(self) -> None:
        """Full CRC verification of every committed segment."""
        for name in list(self.segments):
            try:
                self.reader(name).verify()
            except SegmentCorrupt as exc:
                self._quarantine_segment(name, str(exc))
                raise StoreCorruption(
                    f"segment {name} failed verification and was "
                    f"quarantined: {exc}"
                ) from exc

    # -- segments ----------------------------------------------------------------

    @staticmethod
    def segment_name(label: str) -> str:
        """A filesystem-safe segment name derived from a free-form label."""
        safe = label.replace("/", "-").replace(":", "_").replace(" ", "_")
        return f"{safe}.seg"

    def segment_path(self, name: str) -> Path:
        return self.segment_dir / name

    def _rows_of(self, name: str) -> int:
        meta = self.segments.get(name)
        return int(meta.get("rows", 0)) if meta else 0

    def writer(self, name: Optional[str] = None,
               block_rows: int = DEFAULT_BLOCK_ROWS) -> SegmentWriter:
        """A streaming writer for a new segment (not yet committed).

        Each shard/writer gets its own file, so any number of writers can
        run in parallel — across threads or processes — without contending;
        only :meth:`commit` serialises on the manifest.
        """
        if name is None:
            name = f"seg-{self._commits:04d}-{len(self.segments):06d}.seg"
        if not name.endswith(".seg"):
            name += ".seg"
        return SegmentWriter(self.segment_path(name), block_rows=block_rows,
                             os_layer=self.os)

    def reader(self, name: str) -> SegmentReader:
        meta = self.segments.get(name)
        if meta is None:
            raise StoreError(f"unknown segment {name!r}")
        return SegmentReader(self.segment_path(name), meta,
                             use_mmap=self.use_mmap)

    def commit(
        self,
        metas: Sequence[Dict[str, object]],
        snapshot: Optional[str] = None,
        snapshot_meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Make sealed segments visible (and optionally snapshot them).

        ``metas`` are :meth:`SegmentWriter.seal` results.  The segments
        become queryable — and the snapshot exists — only once the single
        atomic manifest rewrite lands; a crash before that leaves orphans,
        never partial state.  Safe under concurrent writers: the rewrite
        happens under the store's exclusive lock against a refreshed view
        of the manifest, so commits interleave instead of overwriting.
        """
        with self._exclusive():
            self.refresh()
            names: List[str] = []
            for meta in metas:
                name = str(meta["name"])
                if name in self.segments:
                    raise StoreError(f"segment {name!r} already committed")
                if not self.segment_path(name).exists():
                    raise StoreError(f"segment file {name!r} was never sealed")
                names.append(name)
            for meta, name in zip(metas, names):
                self.segments[name] = dict(meta)
            self._commits += 1
            if snapshot is not None:
                if snapshot in self.snapshots:
                    raise StoreError(f"snapshot {snapshot!r} already exists")
                self.snapshots[snapshot] = Snapshot(
                    name=snapshot,
                    segments=tuple(names),
                    rows=sum(self._rows_of(n) for n in names),
                    meta=dict(snapshot_meta or {}),
                )
            self._write_manifest()
        rows = sum(int(m.get("rows", 0)) for m in metas)
        self.metrics.counter("store_segments_committed").inc(len(metas))
        self.metrics.counter("store_rows_ingested").inc(rows)
        self.metrics.gauge("store_total_rows").set(self.total_rows)

    def create_snapshot(
        self,
        name: str,
        segments: Sequence[str],
        meta: Optional[Dict[str, object]] = None,
    ) -> Snapshot:
        """Bind already-committed segments to a new named snapshot."""
        with self._exclusive():
            self.refresh()
            if name in self.snapshots:
                raise StoreError(f"snapshot {name!r} already exists")
            for segment in segments:
                if segment not in self.segments:
                    raise StoreError(f"unknown segment {segment!r}")
            snapshot = Snapshot(
                name=name,
                segments=tuple(segments),
                rows=sum(self._rows_of(s) for s in segments),
                meta=dict(meta or {}),
            )
            self.snapshots[name] = snapshot
            self._write_manifest()
        return snapshot

    def drop_snapshot(self, name: str) -> List[str]:
        """Remove a snapshot; delete segments only it referenced.

        The retention primitive: a round that aged out of a tenant's
        retention window disappears from the manifest atomically; segments
        referenced by no other snapshot are then deleted from disk (shared
        segments survive untouched).  Returns the deleted segment names.
        """
        with self._exclusive():
            self.refresh()
            snap = self.snapshots.pop(name, None)
            if snap is None:
                raise StoreError(
                    f"unknown snapshot {name!r}; have "
                    f"{sorted(self.snapshots) or 'none'}"
                )
            still_referenced = {
                segment
                for other in self.snapshots.values()
                for segment in other.segments
            }
            doomed = [
                segment for segment in snap.segments
                if segment not in still_referenced and segment in self.segments
            ]
            for segment in doomed:
                del self.segments[segment]
            self._commits += 1
            self._write_manifest()
            for segment in doomed:
                self.segment_path(segment).unlink(missing_ok=True)
        self.metrics.counter("store_snapshots_dropped").inc()
        self._emit_event(
            "store_snapshot_dropped", snapshot=name, segments=len(doomed)
        )
        return doomed

    def snapshot(self, name: str) -> Snapshot:
        snap = self.snapshots.get(name)
        if snap is None:
            raise StoreError(
                f"unknown snapshot {name!r}; have "
                f"{sorted(self.snapshots) or 'none'}"
            )
        return snap

    # -- reading -----------------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return sum(self._rows_of(name) for name in self.segments)

    def iter_rows(
        self,
        segments: Optional[Sequence[str]] = None,
        blocks_for: Optional[Dict[str, Sequence[int]]] = None,
    ) -> Iterator[ProbeResult]:
        """Rows in commit order; corrupt segments quarantine and raise."""
        names = list(segments) if segments is not None else list(self.segments)
        for name in names:
            reader = self.reader(name)
            wanted = blocks_for.get(name) if blocks_for else None
            try:
                yield from reader.iter_rows(wanted)
            except SegmentCorrupt as exc:
                self._quarantine_segment(name, str(exc))
                raise StoreCorruption(
                    f"segment {name} is corrupt and was quarantined mid-"
                    f"read: {exc}"
                ) from exc

    def orphans(self) -> List[str]:
        """Sealed segment files on disk that no manifest entry references."""
        known = set(self.segments) | {
            name + ".corrupt" for name in self.quarantined
        }
        return sorted(
            path.name for path in self.segment_dir.glob("*.seg")
            if path.name not in known
        )

    def sweep_orphans(self, prefix: Optional[str] = None) -> List[str]:
        """Delete sealed-but-unreferenced segment files; returns their names.

        The crash-recovery janitor: a campaign killed between sealing its
        shard segments and the manifest commit leaves orphans under
        deterministic names; the resumed run re-seals over them, but a
        campaign whose shard set shrank (or a rename that never committed)
        can strand files forever.  ``prefix`` restricts the sweep to one
        round's namespace so concurrent rounds sharing a store never sweep
        each other's in-flight segments.
        """
        swept: List[str] = []
        for name in self.orphans():
            if prefix is not None and not name.startswith(prefix):
                continue
            (self.segment_dir / name).unlink(missing_ok=True)
            swept.append(name)
        if swept:
            self.metrics.counter("store_orphans_swept").inc(len(swept))
            self._emit_event("store_orphans_swept", segments=swept)
        return swept

    def info(self) -> Dict[str, object]:
        return {
            "directory": str(self.directory),
            "segments": len(self.segments),
            "rows": self.total_rows,
            "bytes": sum(
                int(m.get("bytes", 0)) for m in self.segments.values()
            ),
            "snapshots": {
                name: {"segments": len(s.segments), "rows": s.rows}
                for name, s in sorted(self.snapshots.items())
            },
            "quarantined": list(self.quarantined),
            "orphans": self.orphans(),
            "commits": self._commits,
        }

    # -- compaction --------------------------------------------------------------

    def compact(self, block_rows: int = DEFAULT_BLOCK_ROWS) -> Dict[str, object]:
        """Merge segments with identical snapshot membership, dedup rows.

        Foreground and incremental-free by design (there is no background
        thread to leak): each membership group's segments rewrite into one
        new segment with ``dedup_key`` de-duplication, the manifest swaps
        atomically, and only then are the old files (and any orphans)
        deleted.  Snapshot row sets are preserved exactly — the groups are
        the finest partition that keeps every snapshot expressible.  Runs
        under the store's exclusive lock against a refreshed manifest, so
        a concurrent committer is never clobbered.
        """
        with self._exclusive():
            self.refresh()
            return self._compact_locked(block_rows)

    def _compact_locked(self, block_rows: int) -> Dict[str, object]:
        membership: Dict[str, Tuple[str, ...]] = {}
        for name in self.segments:
            owners = tuple(
                sorted(
                    snap.name for snap in self.snapshots.values()
                    if name in snap.segments
                )
            )
            membership[name] = owners
        groups: Dict[Tuple[str, ...], List[str]] = {}
        for name, owners in membership.items():
            groups.setdefault(owners, []).append(name)

        rows_before = self.total_rows
        segments_before = len(self.segments)
        duplicates = 0
        new_segments: Dict[str, Dict[str, object]] = {}
        replaced: Dict[str, str] = {}  # old name -> new name
        to_delete: List[str] = []

        for index, (owners, names) in enumerate(sorted(groups.items())):
            if len(names) == 1:
                # A lone segment may still hold internal duplicates only if
                # it was written without in-scan dedup; rewriting it is
                # wasted I/O in the common case, so single-segment groups
                # are kept as-is.
                name = names[0]
                new_segments[name] = self.segments[name]
                continue
            writer = SegmentWriter(
                self.segment_path(f"compact-{self._commits:04d}-{index:03d}.seg"),
                block_rows=block_rows,
                os_layer=self.os,
            )
            seen: set = set()
            for name in names:
                for row in self.iter_rows([name]):
                    key = row.dedup_key
                    if key in seen:
                        duplicates += 1
                        continue
                    seen.add(key)
                    writer.append(row)
            meta = writer.seal()
            new_name = str(meta["name"])
            new_segments[new_name] = meta
            for name in names:
                replaced[name] = new_name
                to_delete.append(name)

        # Swap the manifest: new segment table + rewritten snapshot refs.
        self.segments = new_segments
        for snap_name, snap in list(self.snapshots.items()):
            seen_names: List[str] = []
            for segment in snap.segments:
                target = replaced.get(segment, segment)
                if target not in seen_names:
                    seen_names.append(target)
            self.snapshots[snap_name] = Snapshot(
                name=snap.name,
                segments=tuple(seen_names),
                rows=sum(self._rows_of(s) for s in seen_names),
                meta=snap.meta,
            )
        self._commits += 1
        self._write_manifest()
        for name in to_delete:
            self.segment_path(name).unlink(missing_ok=True)
        for orphan in self.orphans():
            (self.segment_dir / orphan).unlink(missing_ok=True)

        report = {
            "segments_before": segments_before,
            "segments_after": len(self.segments),
            "rows_before": rows_before,
            "rows_after": self.total_rows,
            "duplicates_dropped": duplicates,
        }
        self.metrics.counter("store_compactions").inc()
        self.metrics.counter("store_rows_compacted").inc(
            int(report["rows_after"])
        )
        return report
