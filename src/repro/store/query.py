"""Query API over a :class:`~repro.store.store.ResultStore`.

Everything is iterator-based — rows decode lazily, block by block, and
only the blocks the per-segment prefix index nominates are touched — so a
prefix query over a month of campaign rounds costs I/O proportional to the
matching slice, not the store.

:func:`diff` is the longitudinal primitive: given two snapshots (two scan
rounds of the same space), it reports the periphery churn — which
responders appeared, vanished, or persisted, at both address and /64
granularity — plus the EUI-64 share drift, the paper's proxy for how much
of the periphery leaks hardware identity each round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.probes.base import ReplyKind
from repro.core.scanner import ProbeResult
from repro.net.addr import IPv6Prefix, is_eui64_iid
from repro.store.store import ResultStore


def _segment_names(store: ResultStore,
                   snapshot: Optional[str]) -> List[str]:
    if snapshot is None:
        return list(store.segments)
    return list(store.snapshot(snapshot).segments)


def query(
    store: ResultStore,
    snapshot: Optional[str] = None,
    prefix: "IPv6Prefix | str | None" = None,
    kind: "ReplyKind | str | None" = None,
    responder64: "IPv6Prefix | str | None" = None,
) -> Iterator[ProbeResult]:
    """Rows matching every given filter, in segment/commit order.

    ``prefix`` filters on the probe *target* (the scanned space) through
    the /32→/48→/64 index; ``responder64`` filters on the responding
    device's /64 through the responder index; ``kind`` filters on the
    reply kind.  Segments whose index proves they cannot match are never
    opened.
    """
    if isinstance(prefix, str):
        prefix = IPv6Prefix.from_string(prefix)
    if isinstance(responder64, str):
        responder64 = IPv6Prefix.from_string(responder64)
    if responder64 is not None and responder64.length != 64:
        raise ValueError("responder64 must be a /64 prefix")
    if isinstance(kind, str):
        kind = ReplyKind(kind)

    for name in _segment_names(store, snapshot):
        reader = store.reader(name)
        blocks: Optional[Sequence[int]] = None
        if prefix is not None:
            blocks = reader.index.blocks_for_prefix(prefix)
            if not blocks:
                continue  # index proves no row under this prefix: skip file
        if responder64 is not None:
            responder_blocks = reader.index.blocks_for_responder64(
                responder64
            )
            if not responder_blocks:
                continue
            blocks = (
                responder_blocks if blocks is None
                else sorted(set(blocks) & set(responder_blocks))
            )
            if not blocks:
                continue
        for row in store.iter_rows([name], blocks_for={name: blocks}
                                   if blocks is not None else None):
            # The index nominates blocks; rows still prove membership, so a
            # lossy index can cost time but never widen the answer.
            if prefix is not None and not prefix.contains(row.target):
                continue
            if responder64 is not None and row.responder.slash64 != responder64:
                continue
            if kind is not None and row.kind != kind:
                continue
            yield row


@dataclass
class ChurnReport:
    """What changed between two scan rounds of the same space."""

    snapshot_a: str
    snapshot_b: str
    #: Responder addresses seen only in round B / only in round A / both.
    new: Set[int] = field(default_factory=set)
    lost: Set[int] = field(default_factory=set)
    stable: Set[int] = field(default_factory=set)
    #: The same sets collapsed to the paper's /64 periphery-dedup unit.
    new_slash64: Set[int] = field(default_factory=set)
    lost_slash64: Set[int] = field(default_factory=set)
    stable_slash64: Set[int] = field(default_factory=set)
    rows_a: int = 0
    rows_b: int = 0
    #: Fraction of each round's responders exposing an EUI-64 IID.
    eui64_share_a: float = 0.0
    eui64_share_b: float = 0.0

    @property
    def responders_a(self) -> int:
        return len(self.lost) + len(self.stable)

    @property
    def responders_b(self) -> int:
        return len(self.new) + len(self.stable)

    @property
    def churn_rate(self) -> float:
        """(new + lost) / union — 0.0 for identical rounds."""
        union = len(self.new) + len(self.lost) + len(self.stable)
        return (len(self.new) + len(self.lost)) / union if union else 0.0

    @property
    def eui64_drift(self) -> float:
        return self.eui64_share_b - self.eui64_share_a

    def to_dict(self) -> Dict[str, object]:
        return {
            "snapshot_a": self.snapshot_a,
            "snapshot_b": self.snapshot_b,
            "rows_a": self.rows_a,
            "rows_b": self.rows_b,
            "responders_a": self.responders_a,
            "responders_b": self.responders_b,
            "new": len(self.new),
            "lost": len(self.lost),
            "stable": len(self.stable),
            "new_slash64": len(self.new_slash64),
            "lost_slash64": len(self.lost_slash64),
            "stable_slash64": len(self.stable_slash64),
            "churn_rate": self.churn_rate,
            "eui64_share_a": self.eui64_share_a,
            "eui64_share_b": self.eui64_share_b,
            "eui64_drift": self.eui64_drift,
        }

    def render(self) -> str:
        lines = [
            f"churn {self.snapshot_a} -> {self.snapshot_b}",
            f"  responders : {self.responders_a} -> {self.responders_b}",
            f"  stable     : {len(self.stable)} addr / "
            f"{len(self.stable_slash64)} x /64",
            f"  lost       : {len(self.lost)} addr / "
            f"{len(self.lost_slash64)} x /64",
            f"  new        : {len(self.new)} addr / "
            f"{len(self.new_slash64)} x /64",
            f"  churn rate : {self.churn_rate:.1%}",
            f"  EUI-64     : {self.eui64_share_a:.1%} -> "
            f"{self.eui64_share_b:.1%} ({self.eui64_drift:+.1%})",
        ]
        return "\n".join(lines)


def _round_profile(
    store: ResultStore, snapshot: str
) -> Tuple[Set[int], Set[int], int, float]:
    """(responders, responder /64s, rows, EUI-64 share) for one round."""
    responders: Set[int] = set()
    slash64s: Set[int] = set()
    rows = 0
    for row in query(store, snapshot=snapshot):
        rows += 1
        responders.add(row.responder.value)
        slash64s.add(row.responder.value >> 64)
    eui64 = sum(
        1 for value in responders
        if is_eui64_iid(value & ((1 << 64) - 1))
    )
    share = eui64 / len(responders) if responders else 0.0
    return responders, slash64s, rows, share


def diff(store: ResultStore, snapshot_a: str,
         snapshot_b: str) -> ChurnReport:
    """The churn report between two rounds (A = earlier, B = later)."""
    resp_a, s64_a, rows_a, share_a = _round_profile(store, snapshot_a)
    resp_b, s64_b, rows_b, share_b = _round_profile(store, snapshot_b)
    return ChurnReport(
        snapshot_a=snapshot_a,
        snapshot_b=snapshot_b,
        new=resp_b - resp_a,
        lost=resp_a - resp_b,
        stable=resp_a & resp_b,
        new_slash64=s64_b - s64_a,
        lost_slash64=s64_a - s64_b,
        stable_slash64=s64_a & s64_b,
        rows_a=rows_a,
        rows_b=rows_b,
        eui64_share_a=share_a,
        eui64_share_b=share_b,
    )
