"""Streaming result sinks: rows leave the scan as they are produced.

Before the store existed, every path that wanted scan output buffered the
whole :class:`~repro.core.scanner.ScanResult` in memory and then wrote it
out in one shot — fine for a mini-topology demo, fatal for a campaign-scale
result set.  A :class:`ResultSink` inverts that: the scanner (and anything
else producing :class:`~repro.core.scanner.ProbeResult` rows) calls
``emit`` per validated reply, and the sink streams it wherever it goes —
a binary segment, a CSV/JSONL stream, a plain list, or several of those at
once via :class:`TeeSink`.

``Scanner`` accepts a sink and, when one is set, emits rows to it *instead
of* appending to ``result.results`` — which is what bounds a campaign's
peak resident row count by the segment writer's block size rather than the
total reply volume.

The CSV/JSONL sinks produce byte-for-byte the same rows as the one-shot
writers in :mod:`repro.core.output` (those writers are now thin wrappers
over these sinks; the parity tests assert it).
"""

from __future__ import annotations

import csv
import json
from typing import IO, Iterable, List, Sequence

from repro.core.scanner import ProbeResult

#: Column order shared by the CSV/JSONL row forms (and the legacy writers).
SCAN_FIELDS = ("target", "responder", "kind", "icmp_type", "icmp_code",
               "same_slash64")


def probe_row(result: ProbeResult) -> dict:
    """The canonical dict form of one scan row (CSV/JSONL payload)."""
    return {
        "target": str(result.target),
        "responder": str(result.responder),
        "kind": result.kind.value,
        "icmp_type": result.icmp_type,
        "icmp_code": result.icmp_code,
        "same_slash64": result.same_slash64,
    }


class ResultSink:
    """Base sink: count rows; subclasses override :meth:`emit`."""

    def __init__(self) -> None:
        self.rows = 0

    def emit(self, result: ProbeResult) -> None:
        self.rows += 1

    def emit_many(self, results: Iterable[ProbeResult]) -> None:
        for result in results:
            self.emit(result)

    def close(self) -> None:
        """Flush/seal whatever the sink writes to (idempotent)."""


class ListSink(ResultSink):
    """Buffers rows in a list — the legacy in-memory behaviour, as a sink."""

    def __init__(self) -> None:
        super().__init__()
        self.results: List[ProbeResult] = []

    def emit(self, result: ProbeResult) -> None:
        self.rows += 1
        self.results.append(result)


class CsvSink(ResultSink):
    """Streams rows as CSV; the header is written up front so an empty scan
    still yields a well-formed file (matching ``write_scan_csv``)."""

    def __init__(self, stream: IO[str]) -> None:
        super().__init__()
        self._writer = csv.DictWriter(stream, fieldnames=list(SCAN_FIELDS))
        self._writer.writeheader()

    def emit(self, result: ProbeResult) -> None:
        self.rows += 1
        self._writer.writerow(probe_row(result))


class JsonlSink(ResultSink):
    """Streams rows as JSON lines (matching ``write_scan_jsonl``)."""

    def __init__(self, stream: IO[str]) -> None:
        super().__init__()
        self._stream = stream

    def emit(self, result: ProbeResult) -> None:
        self.rows += 1
        self._stream.write(json.dumps(probe_row(result)) + "\n")


class SegmentSink(ResultSink):
    """Streams rows into a :class:`~repro.store.segment.SegmentWriter`.

    ``close()`` seals the segment and keeps the resulting metadata in
    ``meta`` for the caller to commit into a store manifest.
    """

    def __init__(self, writer) -> None:
        super().__init__()
        self.writer = writer
        self.meta = None

    def emit(self, result: ProbeResult) -> None:
        self.rows += 1
        self.writer.append(result)

    def close(self) -> None:
        if self.meta is None and not self.writer.sealed:
            self.meta = self.writer.seal()


class TeeSink(ResultSink):
    """Fans each row out to several sinks (e.g. segment + live CSV)."""

    def __init__(self, sinks: Sequence[ResultSink]) -> None:
        super().__init__()
        self.sinks = list(sinks)

    def emit(self, result: ProbeResult) -> None:
        self.rows += 1
        for sink in self.sinks:
            sink.emit(result)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
