"""repro.store — the segmented, durable scan-result datastore.

The results path equivalent of the scan engine: instead of buffering every
:class:`~repro.core.scanner.ProbeResult` in memory and dumping a one-shot
CSV, scans stream rows through a :class:`ResultSink` into sealed binary
segments under an atomically committed manifest; rounds bind to named
snapshots; prefix-indexed queries and longitudinal snapshot diffs run over
the store without rescanning anything.

* :mod:`repro.store.segment`  — the append-only binary segment format;
* :mod:`repro.store.store`    — :class:`ResultStore`: manifest, commit
  protocol, quarantine, compaction;
* :mod:`repro.store.index`    — per-segment /32→/48→/64 prefix buckets;
* :mod:`repro.store.snapshot` — named round → segment-set bindings;
* :mod:`repro.store.query`    — iterator queries and :func:`diff` churn;
* :mod:`repro.store.sink`     — streaming sinks (segment, CSV, JSONL, tee);
* :mod:`repro.store.oslayer`  — the pluggable durability syscall surface
  (write/fsync/rename/dir-fsync) the host fault domain injects under.
"""

from repro.store.oslayer import (
    OsLayer,
    RealOs,
    get_default_os,
    set_default_os,
)
from repro.store.query import ChurnReport, diff, query
from repro.store.segment import (
    SegmentCorrupt,
    SegmentReader,
    SegmentWriter,
)
from repro.store.sink import (
    CsvSink,
    JsonlSink,
    ListSink,
    ResultSink,
    SegmentSink,
    TeeSink,
)
from repro.store.snapshot import Snapshot
from repro.store.store import ResultStore, StoreCorruption, StoreError

__all__ = [
    "ChurnReport",
    "CsvSink",
    "JsonlSink",
    "ListSink",
    "OsLayer",
    "RealOs",
    "ResultSink",
    "ResultStore",
    "SegmentCorrupt",
    "SegmentReader",
    "SegmentSink",
    "SegmentWriter",
    "Snapshot",
    "StoreCorruption",
    "StoreError",
    "TeeSink",
    "diff",
    "get_default_os",
    "query",
    "set_default_os",
]
