"""Named snapshots: one campaign round bound to its segment set.

The paper's methodology is longitudinal — the same twelve ISPs scanned
repeatedly over a month, with per-round comparison of which peripheries
persist.  A :class:`Snapshot` is the store's unit of "one round": a name
(``2020-11``, ``round-3``, a campaign id), the ordered list of segments
that round committed, and free-form metadata (ranges, shard count, stats).
Snapshots are pure manifest entries — they own no bytes of their own — so
creating one is O(1) and two snapshots may share segments after
compaction groups them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class Snapshot:
    """An immutable binding of one scan round to its segment set."""

    name: str
    segments: Tuple[str, ...]
    rows: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "segments": list(self.segments),
            "rows": self.rows,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Snapshot":
        return cls(
            name=str(data["name"]),
            segments=tuple(str(s) for s in data.get("segments", [])),
            rows=int(data.get("rows", 0)),
            meta=dict(data.get("meta") or {}),
        )
