"""Append-only binary result segments: the store's on-disk unit.

A *segment* is a sealed, immutable file of :class:`~repro.core.scanner.
ProbeResult` rows in fixed 35-byte binary form — 16-byte target address,
16-byte responder address, and one byte each for the reply kind, ICMPv6
type, and ICMPv6 code.  Rows are grouped into *blocks*::

    +-------- file --------------------------------------------------+
    | magic "RPS1" | version u8 | reserved ×3                        |
    | block: rows u32 | row ×N (35 B each) | crc32(payload) u32      |
    | block: ...                                                     |
    +----------------------------------------------------------------+

Every block carries a CRC32 trailer over its payload, so truncation and
bit-rot are detected at read time (:class:`SegmentCorrupt`) instead of
surfacing as silently wrong rows.  Reply kinds are stored as one-byte codes
against a table recorded in the segment's metadata, so a segment written
today stays decodable if the enum ever grows.

Writers stream: rows append into an in-memory block buffer of at most
``block_rows`` rows and flush to disk when full — the writer's peak resident
row count is the block size, which is what lets a campaign's result path
run in bounded memory.  Sealing fsyncs and atomically renames the ``.tmp``
file into place, so a crash mid-write never leaves a half-segment under a
committed name.

Readers are mmap-backed by default — block payloads are decoded straight
out of the mapping with no intermediate copy — with a plain ``read_bytes``
scalar fallback for platforms or filesystems where mmap is unavailable.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.probes.base import ReplyKind
from repro.core.scanner import ProbeResult
from repro.net.addr import IPv6Addr
from repro.store.index import SegmentIndex, SegmentIndexBuilder
from repro.store.oslayer import OsLayer, get_default_os

MAGIC = b"RPS1"
SEGMENT_VERSION = 1
HEADER = MAGIC + bytes([SEGMENT_VERSION, 0, 0, 0])

ROW = struct.Struct(">16s16sBBB")
ROW_SIZE = ROW.size  # 35
_U32 = struct.Struct(">I")

#: Canonical kind-code table for newly written segments (code = position).
KIND_TABLE: Tuple[str, ...] = tuple(kind.value for kind in ReplyKind)
_KIND_CODE: Dict[ReplyKind, int] = {
    kind: code for code, kind in enumerate(ReplyKind)
}

#: Default rows per block — the writer's peak resident row count.
DEFAULT_BLOCK_ROWS = 512


class SegmentCorrupt(RuntimeError):
    """A segment failed structural or CRC validation while being read."""


def pack_row(result: ProbeResult) -> bytes:
    return ROW.pack(
        result.target.value.to_bytes(16, "big"),
        result.responder.value.to_bytes(16, "big"),
        _KIND_CODE[result.kind],
        result.icmp_type & 0xFF,
        result.icmp_code & 0xFF,
    )


class SegmentWriter:
    """Streams rows into blocks; ``seal()`` makes the segment durable.

    ``path`` is the final segment path; bytes accumulate in a uniquely
    named sibling ``.tmp`` file (two workers retrying the same shard must
    not clobber each other) until :meth:`seal` fsyncs and renames it into
    place.  An unsealed writer leaves only a ``.tmp`` behind — never a
    half-written segment under the committed name.
    """

    def __init__(self, path: "str | os.PathLike[str]",
                 block_rows: int = DEFAULT_BLOCK_ROWS,
                 os_layer: Optional[OsLayer] = None) -> None:
        if block_rows < 1:
            raise ValueError("block_rows must be positive")
        self.path = Path(path)
        self.block_rows = block_rows
        #: Durability syscall surface; the host fault domain swaps this for
        #: a shim that fails/tears/crashes scheduled operations.
        self.os = os_layer if os_layer is not None else get_default_os()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        self._fh = open(self._tmp, "wb")
        self.os.write(self._fh, HEADER)
        self._crc = zlib.crc32(HEADER)
        self._bytes = len(HEADER)
        self._buffer: List[bytes] = []
        self._index = SegmentIndexBuilder()
        self.rows = 0
        self.blocks = 0
        self.sealed = False

    @property
    def buffered_rows(self) -> int:
        """Rows currently resident in memory (bounded by ``block_rows``)."""
        return len(self._buffer)

    def append(self, result: ProbeResult) -> None:
        self._buffer.append(pack_row(result))
        self._index.add(self.blocks, result.target.value,
                        result.responder.value)
        self.rows += 1
        if len(self._buffer) >= self.block_rows:
            self._flush_block()

    def append_many(self, results: Sequence[ProbeResult]) -> None:
        for result in results:
            self.append(result)

    def _write(self, data: bytes) -> None:
        self.os.write(self._fh, data)
        self._crc = zlib.crc32(data, self._crc)
        self._bytes += len(data)

    def _flush_block(self) -> None:
        if not self._buffer:
            return
        payload = b"".join(self._buffer)
        self._write(_U32.pack(len(self._buffer)))
        self._write(payload)
        self._write(_U32.pack(zlib.crc32(payload)))
        self._buffer.clear()
        self.blocks += 1

    def seal(self) -> Dict[str, object]:
        """Flush, fsync, rename into place; returns the segment metadata.

        The metadata dict is what a :class:`~repro.store.store.ResultStore`
        manifest records per segment: row/block/byte counts, the whole-file
        CRC32, the kind-code table, and the prefix index.
        """
        if self.sealed:
            raise RuntimeError(f"segment {self.path.name} already sealed")
        self._flush_block()
        self._fh.flush()
        self.os.fsync(self._fh)
        self._fh.close()
        self.os.replace(self._tmp, self.path)
        self.sealed = True
        return {
            "name": self.path.name,
            "rows": self.rows,
            "blocks": self.blocks,
            "bytes": self._bytes,
            "crc32": self._crc & 0xFFFFFFFF,
            "kinds": list(KIND_TABLE),
            "index": self._index.to_dict(),
        }

    def abort(self) -> None:
        """Discard an unsealed writer and its temporary file."""
        if self.sealed:
            return
        self._fh.close()
        self._tmp.unlink(missing_ok=True)


class SegmentReader:
    """Decodes a sealed segment, block-CRC-verified, mmap-backed.

    ``meta`` is the dict :meth:`SegmentWriter.seal` produced (normally
    served from the store manifest).  ``use_mmap=False`` forces the scalar
    fallback — one ``read_bytes`` of the whole file — which is also taken
    automatically when mapping fails.
    """

    def __init__(self, path: "str | os.PathLike[str]",
                 meta: Dict[str, object], use_mmap: bool = True) -> None:
        self.path = Path(path)
        self.meta = meta
        self.use_mmap = use_mmap
        kinds = meta.get("kinds") or list(KIND_TABLE)
        self._kinds: List[ReplyKind] = [ReplyKind(value) for value in kinds]
        self.index = SegmentIndex.from_dict(meta.get("index") or {})
        self.rows = int(meta.get("rows", 0))

    def _buffer(self):
        """(buffer, closer): an mmap over the file, or its bytes."""
        fh = open(self.path, "rb")
        if self.use_mmap:
            try:
                view = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                return view, (lambda: (view.close(), fh.close()))
            except (ValueError, OSError):
                pass  # empty file or mmap-hostile FS: scalar fallback
        data = fh.read()
        fh.close()
        return data, (lambda: None)

    def verify(self) -> None:
        """Whole-file structural + CRC check against the metadata."""
        expected_bytes = int(self.meta.get("bytes", -1))
        actual = self.path.stat().st_size
        if expected_bytes >= 0 and actual != expected_bytes:
            raise SegmentCorrupt(
                f"{self.path.name}: size {actual} != recorded {expected_bytes}"
            )
        buffer, close = self._buffer()
        try:
            crc = zlib.crc32(buffer)
            recorded = self.meta.get("crc32")
            if recorded is not None and crc != int(recorded):
                raise SegmentCorrupt(
                    f"{self.path.name}: file CRC {crc:#x} != recorded "
                    f"{int(recorded):#x}"
                )
            for _ in self._iter_blocks(buffer, None):
                pass
        finally:
            close()

    def _decode_rows(self, payload, count: int) -> List[ProbeResult]:
        kinds = self._kinds
        out: List[ProbeResult] = []
        offset = 0
        for _ in range(count):
            target, responder, kind_code, icmp_type, icmp_code = (
                ROW.unpack_from(payload, offset)
            )
            offset += ROW_SIZE
            try:
                kind = kinds[kind_code]
            except IndexError:
                raise SegmentCorrupt(
                    f"{self.path.name}: kind code {kind_code} outside the "
                    "recorded kind table"
                ) from None
            out.append(
                ProbeResult(
                    target=IPv6Addr(int.from_bytes(target, "big")),
                    responder=IPv6Addr(int.from_bytes(responder, "big")),
                    kind=kind,
                    icmp_type=icmp_type,
                    icmp_code=icmp_code,
                )
            )
        return out

    def _iter_blocks(
        self, buffer, wanted: Optional[Sequence[int]]
    ) -> Iterator[Tuple[int, List[ProbeResult]]]:
        size = len(buffer)
        if size < len(HEADER) or bytes(buffer[:4]) != MAGIC:
            raise SegmentCorrupt(f"{self.path.name}: bad or missing magic")
        want = None if wanted is None else set(wanted)
        offset = len(HEADER)
        block_id = 0
        view = memoryview(buffer)
        try:
            while offset < size:
                if offset + 4 > size:
                    raise SegmentCorrupt(
                        f"{self.path.name}: truncated block header at "
                        f"offset {offset}"
                    )
                (count,) = _U32.unpack_from(view, offset)
                offset += 4
                payload_size = count * ROW_SIZE
                end = offset + payload_size + 4
                if end > size:
                    raise SegmentCorrupt(
                        f"{self.path.name}: truncated block {block_id} "
                        f"(need {end} bytes, have {size})"
                    )
                if want is None or block_id in want:
                    payload = view[offset:offset + payload_size]
                    # Released in the finally even when corruption raises —
                    # a live slice in the traceback would otherwise make the
                    # mmap unclosable (BufferError masking the real error).
                    try:
                        (recorded,) = _U32.unpack_from(
                            view, offset + payload_size
                        )
                        if zlib.crc32(payload) != recorded:
                            raise SegmentCorrupt(
                                f"{self.path.name}: CRC mismatch in block "
                                f"{block_id}"
                            )
                        yield block_id, self._decode_rows(payload, count)
                    finally:
                        payload.release()
                offset = end
                block_id += 1
        finally:
            view.release()

    def iter_rows(
        self, blocks: Optional[Sequence[int]] = None
    ) -> Iterator[ProbeResult]:
        """Rows in file order, optionally restricted to the given blocks."""
        buffer, close = self._buffer()
        try:
            for _block_id, rows in self._iter_blocks(buffer, blocks):
                yield from rows
        finally:
            close()
