"""The pluggable OS layer under the store's durability operations.

Everything the result path promises about crash safety rests on four
syscalls: ``write`` (segment bytes and manifest JSON reach the kernel),
``fsync`` (they reach the platter), ``rename`` (they become visible
atomically), and the directory fsync that makes the rename itself durable.
:class:`OsLayer` names exactly those four operations, and every component
with a durability claim — :class:`~repro.store.segment.SegmentWriter`,
:class:`~repro.store.store.ResultStore`'s manifest writer, and the
engine's :class:`~repro.engine.checkpoint.CheckpointStore` — routes its
calls through one.

Two implementations ship:

* :class:`RealOs` (the default) delegates straight to ``os`` / the file
  object — byte-identical behaviour and indistinguishable cost; and
* :class:`~repro.faults.host.FaultyOs`, the host fault domain's shim,
  which fails scheduled operations with EIO/ENOSPC, tears writes at byte
  offsets, and crashes before/after renames on the virtual clock.

The **process default** is a module global so a harness can swap the
layer for every store opened afterwards in this process — including
forked pool workers, which inherit it — without threading a parameter
through every constructor.  The kill-anywhere harness
(:mod:`repro.engine.killtest`) installs its SIGKILL-counting layer this
way before the campaign starts.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO


class OsLayer:
    """The durability syscall surface; subclass to intercept.

    The base class *is* the real implementation — :class:`RealOs` exists
    only as a named alias so call sites read honestly.  Methods take the
    open file object (not a path) where the real call would, so a shim
    sees exactly what the kernel would.
    """

    def write(self, handle: IO[bytes], data: bytes) -> None:
        """Append ``data`` to an open binary file."""
        handle.write(data)

    def fsync(self, handle: IO) -> None:
        """Flush OS buffers for an open file to stable storage."""
        os.fsync(handle.fileno())

    def replace(self, src: Path, dst: Path) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        """Fsync a directory so a rename inside it survives power loss.

        Raises :class:`OSError` when the fsync itself fails — the caller
        decides whether degraded rename durability is fatal or merely
        observable.  Platforms that cannot open a directory read-only
        (no such fd semantics) are silently excused: there is nothing
        to sync there, not a failure to report.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic platforms
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class RealOs(OsLayer):
    """The passthrough layer: exactly the syscalls, nothing else."""


#: The process-wide default layer.  Mutated only via :func:`set_default_os`;
#: components capture it at construction time via :func:`get_default_os`.
_DEFAULT: OsLayer = RealOs()


def get_default_os() -> OsLayer:
    """The layer a store/segment/checkpoint opened *now* would use."""
    return _DEFAULT


def set_default_os(layer: "OsLayer | None") -> OsLayer:
    """Install a process-wide layer (None restores the real one).

    Returns the previous layer so a test can restore it in a finally.
    Affects components constructed *after* the call; existing writers
    keep the layer they captured.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = layer if layer is not None else RealOs()
    return previous
