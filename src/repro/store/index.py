"""Per-segment prefix indexes: /32 → /48 → /64 buckets over row blocks.

A scan-result segment packs rows in probe order, which scatters any one
prefix's rows across the whole file (the permutation's entire point is to
spread load).  To answer ``query --prefix 2001:db8:44::/48`` without
decoding every block of every segment, each segment carries a small
three-level index built at seal time:

* ``target`` buckets at /32, /48 and /64 — each maps a prefix value to the
  sorted set of *block ids* containing at least one row whose target falls
  under that prefix;
* ``responder64`` buckets — the same, keyed by the responder's /64 (the
  paper's periphery-dedup unit, and the churn diff's join key).

Queries pick the deepest indexed level not deeper than the query prefix,
select the buckets contained in the query, and decode only the union of
their block lists; rows are still re-checked for membership, so the index
is purely a pruning accelerator — a stale or lossy index can cost time but
can never produce a wrong answer.  At the store level,
:meth:`SegmentIndex.touches_prefix` lets whole unrelated segments be
skipped without opening them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.net.addr import IPv6Prefix

#: The indexed prefix depths, shallow to deep.
LEVELS = (32, 48, 64)


def _level_for(length: int) -> int:
    """The deepest indexed level that is not deeper than the query prefix."""
    chosen = LEVELS[0]
    for level in LEVELS:
        if level <= length:
            chosen = level
    return chosen


class SegmentIndexBuilder:
    """Accumulates bucket → block-id sets while a segment is written."""

    def __init__(self) -> None:
        self.target: Dict[int, Dict[int, Set[int]]] = {
            level: {} for level in LEVELS
        }
        self.responder64: Dict[int, Set[int]] = {}

    def add(self, block_id: int, target_value: int,
            responder_value: int) -> None:
        for level, buckets in self.target.items():
            key = target_value >> (128 - level)
            blocks = buckets.get(key)
            if blocks is None:
                blocks = buckets[key] = set()
            blocks.add(block_id)
        key = responder_value >> 64
        blocks = self.responder64.get(key)
        if blocks is None:
            blocks = self.responder64[key] = set()
        blocks.add(block_id)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (hex bucket keys, sorted block lists)."""
        return {
            "target": {
                str(level): {
                    f"{key:x}": sorted(blocks)
                    for key, blocks in sorted(buckets.items())
                }
                for level, buckets in self.target.items()
            },
            "responder64": {
                f"{key:x}": sorted(blocks)
                for key, blocks in sorted(self.responder64.items())
            },
        }


class SegmentIndex:
    """The read side: bucket lookups over one sealed segment."""

    def __init__(
        self,
        target: Dict[int, Dict[int, List[int]]],
        responder64: Dict[int, List[int]],
    ) -> None:
        self.target = target
        self.responder64 = responder64

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegmentIndex":
        target: Dict[int, Dict[int, List[int]]] = {}
        for level_text, buckets in (data.get("target") or {}).items():
            target[int(level_text)] = {
                int(key, 16): [int(b) for b in blocks]
                for key, blocks in buckets.items()
            }
        responder64 = {
            int(key, 16): [int(b) for b in blocks]
            for key, blocks in (data.get("responder64") or {}).items()
        }
        return cls(target, responder64)

    # -- lookups ---------------------------------------------------------------

    def _matching_blocks(
        self, buckets: Dict[int, List[int]], level: int, prefix: IPv6Prefix
    ) -> List[int]:
        """Union of block ids for buckets intersecting ``prefix``."""
        blocks: Set[int] = set()
        if prefix.length >= level:
            # The query is at least as deep as the bucket level: exactly one
            # bucket can contain it.
            hit = buckets.get(prefix.network >> (128 - level))
            if hit:
                blocks.update(hit)
        else:
            shift = level - prefix.length
            want = prefix.network >> (128 - prefix.length)
            for key, ids in buckets.items():
                if key >> shift == want:
                    blocks.update(ids)
        return sorted(blocks)

    def blocks_for_prefix(self, prefix: IPv6Prefix) -> List[int]:
        """Block ids that may hold targets under ``prefix`` (maybe empty)."""
        level = _level_for(prefix.length)
        buckets = self.target.get(level, {})
        return self._matching_blocks(buckets, level, prefix)

    def blocks_for_responder64(self, prefix: IPv6Prefix) -> List[int]:
        """Block ids that may hold responders in the given /64."""
        if prefix.length != 64:
            raise ValueError("responder buckets are indexed at /64 only")
        return self._matching_blocks(self.responder64, 64, prefix)

    def touches_prefix(self, prefix: IPv6Prefix) -> bool:
        """Cheap segment-level pruning: any target bucket under ``prefix``?"""
        return bool(self.blocks_for_prefix(prefix))
