#!/usr/bin/env python3
"""Scanning the same periphery across a route leak + prefix hijack.

The longitudinal-churn example measures *data-plane* churn (withdrawn
delegations).  This one measures a *control-plane* incident: on the
two-transit leak-demo world, a sharded campaign scans the victim edge
AS's window and commits snapshot ``round-clean``; the BGP fabric then
reconverges under a route leak (a dual-homed stub re-exports the victim's
block from its regional to the tier-1 the vantage lives behind) plus a
more-specific /44 hijack, both diff-applied mid-scan through the fault
journal; and the identical campaign re-runs as ``round-incident``.

The store diff is *asserted*, not just printed: the lost set must equal
exactly the responders behind the hijacked /44 — the leak detour moves
packets through two fewer routers but, because hop parity is preserved,
moves no responders.  The same detour makes the §VI-A loop attack
measurably worse, which the example also asserts.

Run:  python examples/route_leak_campaign.py
"""

import sys
import tempfile

from repro.analysis.leakage import (
    ROUND_CLEAN,
    ROUND_INCIDENT,
    run_leak_experiment,
)
from repro.cli import main as repro_xmap


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="leak-store-") as store_dir:
        run = run_leak_experiment(store_dir)

        print(run.render())
        print()

        # The same report, straight off the committed store via the CLI.
        print(f"$ repro-xmap store diff <store> {ROUND_CLEAN} {ROUND_INCIDENT}")
        repro_xmap(["store", "diff", store_dir, ROUND_CLEAN, ROUND_INCIDENT])

        # Lost == hijacked /44 exactly; leak alone moves no responders;
        # and the shorter leaked path amplifies the loop attack.
        run.verify()
        print(
            f"\nincident check passed: {len(run.report.lost)} lost responder(s) "
            f"== the {len(run.affected)} hijacked delegation(s), "
            f"{len(run.report.stable)} stable, 0 new; "
            f"leak adds +{run.extra_crossings} victim-link crossings per "
            "attack packet"
        )


if __name__ == "__main__":
    sys.exit(main())
