#!/usr/bin/env python3
"""Extend the library: model your own ISP and audit it.

Shows the intended downstream workflow — define a vendor with its software
stack, an ISP profile with its address plan and exposure rates, build the
deployment, and run the full measurement pipeline (subnet inference →
discovery → service audit → loop survey) against it.

Run:  python examples/custom_isp.py
"""

from repro import build_deployment, discover, infer_subprefix_length
from repro.discovery.vendor_id import VendorIdentifier
from repro.isp.profiles import IspProfile
from repro.isp.vendors import Vendor, VendorCatalog, _catalog_vendors
from repro.loop.detector import find_loops
from repro.services.base import Software
from repro.services.zgrab import AppScanner


def main() -> None:
    # 1. A catalogue with one extra vendor: an ISP-branded CPE that ships an
    #    ancient dnsmasq and exposes DNS + HTTP by default.
    catalog = VendorCatalog(_catalog_vendors() + [
        Vendor(
            "AcmeNet",
            oui_count=2,
            service_affinity={"DNS/53": 8.0, "HTTP/80": 3.0, "NTP/123": 0.0},
            software={
                "DNS/53": [(Software("dnsmasq", "2.47"), 1.0)],
                "HTTP/80": [(Software("GoAhead Embedded", "2.5.0"), 1.0)],
            },
            models=("AcmeBox 9000",),
        ),
    ])

    # 2. A profile: a /32 block delegating /60s, 40% loop-vulnerable.
    profile = IspProfile(
        key="acme-broadband", index=99, country="XX", network="Broadband",
        isp="AcmeNet", asn=64512, block="2001:db8::/32", subprefix_len=60,
        paper_last_hops=600_000, same_frac=0.02, unique64_frac=0.99,
        eui64_frac=0.35, mac_unique_frac=0.97,
        service_counts={"DNS/53": 60_000, "HTTP/80": 30_000},
        service_total=75_000,
        loop_count=240_000, loop_same_frac=0.05,
        vendor_mix=(("AcmeNet", 0.7), ("Generic OEM", 0.3)),
    )

    deployment = build_deployment(
        profiles=[profile], scale=2_000, seed=1, catalog=catalog
    )
    isp = deployment.isps["acme-broadband"]
    print(f"AcmeNet: {isp.n_devices} customers in {isp.scan_spec}")

    # 3. The full pipeline.
    inference = infer_subprefix_length(
        deployment.network, deployment.vantage, isp.scan_base, seed=2
    )
    print(f"Inferred delegation length: /{inference.boundary_length} "
          f"in {inference.probes_sent} probes (truth: /60)")

    census = discover(deployment.network, deployment.vantage, isp.scan_spec)
    print(f"Discovered {census.n_unique} peripheries "
          f"(EUI-64: {census.eui64_pct:.1f}%)")

    app = AppScanner(deployment.network, deployment.vantage).scan(
        census.last_hop_addresses(), services=("DNS/53", "HTTP/80")
    )
    dns_alive = len(app.by_service()["DNS/53"])
    print(f"Open DNS forwarders: {dns_alive} "
          f"({100 * dns_alive / census.n_unique:.1f}% of customers)")

    identified = VendorIdentifier(catalog).identify(
        census.records, app.observations
    )
    acme = sum(1 for d in identified if d.vendor == "AcmeNet")
    print(f"Identified {acme} AcmeNet devices "
          f"(of {len(identified)} identified overall)")

    survey = find_loops(deployment.network, deployment.vantage, isp.scan_spec)
    print(f"Routing-loop vulnerable: {survey.n_unique} devices "
          f"({100 * survey.n_unique / isp.n_devices:.1f}%; configured 40%)")


if __name__ == "__main__":
    main()
