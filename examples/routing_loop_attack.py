#!/usr/bin/env python3
"""Reproduce §VI: find routing loops, then mount the amplification attack.

1. Detection — the hop-limit h / h+2 method locates loop-vulnerable CPEs on
   a Chinese broadband block (the paper's 3.9M-device hot spot).
2. Attack — one crafted packet into a victim's not-used prefix, counting how
   many times the access link carries it (the >200x amplification), plus the
   source-spoofing variant that doubles the traffic.
3. Bench test — the Table XII firmware case study for the nine showcased
   routers.

Run:  python examples/routing_loop_attack.py
"""

from repro import build_deployment, profile_by_key, run_loop_attack
from repro.loop.casestudy import CASE_STUDY_ROUTERS, test_router
from repro.loop.detector import find_loops
from repro.net.packet import MAX_HOP_LIMIT


def main() -> None:
    deployment = build_deployment(
        profiles=[profile_by_key("cn-mobile-broadband")], scale=20_000, seed=7
    )
    isp = deployment.isps["cn-mobile-broadband"]

    # -- 1. locate vulnerable devices ----------------------------------------
    survey = find_loops(deployment.network, deployment.vantage,
                        isp.scan_spec, seed=5)
    print(f"Loop survey of {isp.profile.isp} ({isp.scan_spec}):")
    print(f"  {survey.candidates} Time Exceeded responders, "
          f"{survey.n_unique} confirmed loop devices "
          f"({100 * survey.n_unique / isp.n_devices:.1f}% of customers; "
          f"paper: 53%)")

    # -- 2. attack one of them ------------------------------------------------
    victim = survey.records[0]
    truth = isp.truth_by_last_hop()[victim.last_hop.value]
    device_name = truth.name
    # Aim into the victim's delegated-but-unassigned space.
    target = truth.delegated.subprefix(9, 64).address(0xBAD)
    print(f"\nAttacking {victim.last_hop} ({truth.vendor}) "
          f"via not-used prefix target {target}")

    report = run_loop_attack(
        deployment.network, deployment.vantage, target,
        isp.router.name, device_name, hop_limit=MAX_HOP_LIMIT,
    )
    print(f"  hop limit 255, n={report.hops_before_isp} hops to the ISP")
    print(f"  access link carried the packet {report.amplification} times "
          f"(theory: 255-n = {report.theoretical})")
    print(f"  each router forwarded it ~{report.per_router_forwards:.0f} "
          f"times ((255-n)/2)")

    spoof_src = truth.delegated.subprefix(10, 64).address(0xFACE)
    spoofed = run_loop_attack(
        deployment.network, deployment.vantage, target,
        isp.router.name, device_name, spoofed_source=spoof_src,
    )
    print(f"  with a spoofed source inside another not-used prefix: "
          f"{spoofed.amplification} crossings (~2x)")

    # -- 3. the Table XII bench -------------------------------------------------
    print("\nFirmware case study (paper Table XII, showcased rows):")
    showcased = {"GT-AC5300", "COVR-3902", "WS5100", "EA8100", "R6400v2",
                 "AC23", "TL-XDR3230", "AX5", "19.07.4"}
    print(f"  {'brand':12s} {'model':12s} {'WAN':>4s} {'LAN':>4s} "
          f"{'crossings':>10s}")
    for unit in CASE_STUDY_ROUTERS:
        if unit.model not in showcased:
            continue
        result = test_router(unit)
        print(f"  {unit.brand:12s} {unit.model:12s} "
              f"{'loop' if result.wan_loops else 'ok':>4s} "
              f"{'loop' if result.lan_loops else 'ok':>4s} "
              f"{max(result.wan_crossings, result.lan_crossings):>10d}")


if __name__ == "__main__":
    main()
