#!/usr/bin/env python3
"""Chaos campaign: deterministic fault injection against a hardened scan.

Builds a five-event fault schedule — a bursty loss window, a CPE router
crash/reboot, an ICMPv6 rate-limit clampdown, a blackhole window, and a
route flap — and runs the same census three times over the mini testbed:

1. a clean baseline (no faults, no adaptation);
2. the faulted scan with a *naive* scanner (no retries, fixed rate);
3. the faulted scan with the hardened pipeline (AIMD adaptive rate +
   per-target retransmission), which claws back the lost targets.

Everything is keyed off the simulator's virtual clock and a dedicated
fault RNG, so the same seed + schedule reproduces the identical chaos —
packet for packet — on every run and on every executor backend.

Run:  python examples/chaos_campaign.py
"""

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec
from repro.faults import (
    BLACKHOLE,
    LOSS_BURST,
    RATE_LIMIT,
    ROUTE_FLAP,
    ROUTER_CRASH,
    FaultEvent,
    FaultSchedule,
)
from repro.net.spec import TopologySpec

SEED = 1
RANGE = "2001:db8:1:50::/60-64"  # 16 sub-prefixes behind cpe-ok, all answer
RATE_PPS = 2000.0  # 16 targets at 2 kpps span 8 virtual milliseconds

# Five overlap-free windows paced across the scan's virtual envelope.
# Same schedule + same seed = same chaos, bit for bit.
SCHEDULE = FaultSchedule(
    seed=42,
    events=(
        FaultEvent(kind=LOSS_BURST, start=0.0005, end=0.0015, rate=0.6),
        FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.003,
                   device="cpe-ok"),
        FaultEvent(kind=RATE_LIMIT, start=0.0035, end=0.0045,
                   device="cpe-ok", rate=200.0, burst=1),
        FaultEvent(kind=BLACKHOLE, start=0.005, end=0.006, device="isp",
                   prefix="2001:db8:1:50::/60"),
        FaultEvent(kind=ROUTE_FLAP, start=0.0065, end=0.007, device="isp",
                   prefix="2001:db8:1:50::/60"),
    ),
)


def run(label: str, **knobs) -> None:
    config = ScanConfig(scan_range=ScanRange.parse(RANGE), seed=SEED,
                        rate_pps=RATE_PPS, **knobs)
    campaign = Campaign(
        TopologySpec.mini(seed=SEED),
        {label: config},
        probe=ProbeSpec.for_seed(SEED),
        shards=1,
    )
    result = campaign.run()
    stats = result.stats
    faults = result.events.of_type("fault_applied")
    retrans = result.metrics.counter("scanner_retransmits").value
    recovered = result.metrics.counter("scanner_retransmit_recoveries").value
    print(f"{label:<18} sent {stats.sent:3d}  validated {stats.validated:2d} "
          f"({stats.hit_rate:7.2%})  faults {len(faults)}  "
          f"retransmits {retrans} ({recovered} recovered)")


def main() -> None:
    print("Schedule (JSON, loadable via repro scan --fault-schedule):")
    print(SCHEDULE.to_json(indent=2))
    print()

    run("baseline")
    run("chaos / naive", fault_schedule=SCHEDULE)
    run("chaos / hardened", fault_schedule=SCHEDULE,
        retransmit=2, retransmit_backoff=0.0002,
        adaptive_rate=True, adaptive_window=4)

    print("\nThe naive scanner loses every target whose probe (or reply) "
          "fell into a\nfault window; the hardened pipeline retransmits "
          "through the chaos and backs\nits rate off under the clampdown, "
          "recovering the full census.  Re-run this\nscript: the numbers "
          "never change.")


if __name__ == "__main__":
    main()
