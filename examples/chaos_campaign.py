#!/usr/bin/env python3
"""Chaos campaign: deterministic fault injection against a hardened scan.

Builds a five-event fault schedule — a bursty loss window, a CPE router
crash/reboot, an ICMPv6 rate-limit clampdown, a blackhole window, and a
route flap — and runs the same census three times over the mini testbed:

1. a clean baseline (no faults, no adaptation);
2. the faulted scan with a *naive* scanner (no retries, fixed rate);
3. the faulted scan with the hardened pipeline (AIMD adaptive rate +
   per-target retransmission), which claws back the lost targets.

Every run samples the scanner's counters into a virtual-clock time series
(one bucket per probe at this rate) and evaluates the stock health rules
over it.  Because the fault injector journals its windows on the same
clock, the script can *assert* the observability story end to end:

* the baseline run produces **zero** health windows (no false positives);
* on the naive chaos run, **every** injected fault window overlaps at
  least one flagged health window, and every flagged window falls inside
  some fault window (no spurious detections either).

The naive run also dumps a flight-recorder bundle under
``benchmarks/results/flight-recorder/`` — feed it to
``repro-xmap health`` to see the post-mortem view CI exercises.

Everything is keyed off the simulator's virtual clock and a dedicated
fault RNG, so the same seed + schedule reproduces the identical chaos —
packet for packet, bucket for bucket — on every run and on every
executor backend.

Run:  python examples/chaos_campaign.py
"""

from pathlib import Path

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec
from repro.faults import (
    BLACKHOLE,
    LOSS_BURST,
    RATE_LIMIT,
    ROUTE_FLAP,
    ROUTER_CRASH,
    FaultEvent,
    FaultSchedule,
)
from repro.net.spec import TopologySpec

SEED = 1
RANGE = "2001:db8:1:50::/60-64"  # 16 sub-prefixes behind cpe-ok, all answer
RATE_PPS = 2000.0  # 16 targets at 2 kpps span 8 virtual milliseconds

#: One probe per bucket at 2 kpps — fine enough that every fault window
#: spans whole buckets and the health verdicts align with the injector
#: journal exactly.
TS_INTERVAL = 0.0005

#: Where the naive run's flight bundle lands (CI summarises it with
#: ``repro-xmap health``).
FLIGHT_DIR = (
    Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "flight-recorder"
)

# Five overlap-free windows paced across the scan's virtual envelope.
# Same schedule + same seed = same chaos, bit for bit.
SCHEDULE = FaultSchedule(
    seed=42,
    events=(
        FaultEvent(kind=LOSS_BURST, start=0.0005, end=0.0015, rate=0.6),
        FaultEvent(kind=ROUTER_CRASH, start=0.002, end=0.003,
                   device="cpe-ok"),
        FaultEvent(kind=RATE_LIMIT, start=0.0035, end=0.0045,
                   device="cpe-ok", rate=200.0, burst=1),
        FaultEvent(kind=BLACKHOLE, start=0.005, end=0.006, device="isp",
                   prefix="2001:db8:1:50::/60"),
        FaultEvent(kind=ROUTE_FLAP, start=0.0065, end=0.007, device="isp",
                   prefix="2001:db8:1:50::/60"),
    ),
)


def run(label: str, flight: bool = False, **knobs):
    config = ScanConfig(scan_range=ScanRange.parse(RANGE), seed=SEED,
                        rate_pps=RATE_PPS,
                        timeseries_interval=TS_INTERVAL, **knobs)
    campaign = Campaign(
        TopologySpec.mini(seed=SEED),
        {label: config},
        probe=ProbeSpec.for_seed(SEED),
        shards=1,
        health=True,
        flight_dir=str(FLIGHT_DIR) if flight else None,
    )
    result = campaign.run()
    stats = result.stats
    faults = result.events.of_type("fault_applied")
    retrans = result.metrics.counter("scanner_retransmits").value
    recovered = result.metrics.counter("scanner_retransmit_recoveries").value
    print(f"{label:<18} sent {stats.sent:3d}  validated {stats.validated:2d} "
          f"({stats.hit_rate:7.2%})  faults {len(faults)}  "
          f"retransmits {retrans} ({recovered} recovered)  "
          f"health windows {len(result.health.windows)}")
    if flight:
        bundle = campaign.recorder.dump("chaos-example")
        print(f"{'':<18} flight bundle: {bundle}")
    return result


def overlaps(window, event) -> bool:
    """Half-open interval overlap on the shared virtual clock."""
    return window.t_start < event.end and window.t_end > event.start


def main() -> None:
    print("Schedule (JSON, loadable via repro scan --fault-schedule):")
    print(SCHEDULE.to_json(indent=2))
    print()

    baseline = run("baseline")
    naive = run("chaos / naive", flight=True, fault_schedule=SCHEDULE)
    run("chaos / hardened", fault_schedule=SCHEDULE,
        retransmit=2, retransmit_backoff=0.0002,
        adaptive_rate=True, adaptive_window=4)

    # The observability contract, asserted deterministically: a fault-free
    # scan is clean, and on the chaos run the health windows and the
    # injector journal agree — no missed faults, no false positives.
    assert baseline.health is not None and naive.health is not None
    assert not baseline.health.windows, (
        f"false positives on the fault-free run: {baseline.health.windows}"
    )
    for event in SCHEDULE.events:
        flagged = [w for w in naive.health.windows if overlaps(w, event)]
        assert flagged, f"fault window {event.kind} [{event.start}, " \
                        f"{event.end}) raised no health window"
    for window in naive.health.windows:
        assert any(overlaps(window, ev) for ev in SCHEDULE.events), (
            f"spurious health window {window}"
        )
    degraded = naive.events.of_type("health_degraded")
    assert len(degraded) == len(naive.health.windows)

    print(f"\nHealth verdicts on the naive run "
          f"({len(naive.health.windows)} window(s)):")
    print("  " + naive.health.summary().replace("\n", "\n  "))

    print("\nThe naive scanner loses every target whose probe (or reply) "
          "fell into a\nfault window; the hardened pipeline retransmits "
          "through the chaos and backs\nits rate off under the clampdown, "
          "recovering the full census.  The health\nengine flags every "
          "injected window and nothing else — asserted above.\nRe-run "
          "this script: the numbers never change.")


if __name__ == "__main__":
    main()
