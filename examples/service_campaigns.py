#!/usr/bin/env python3
"""Scan-as-a-service walkthrough: three tenants share one daemon.

Starts a :class:`~repro.service.ScanService` with its HTTP API in
process, then plays the full tenant lifecycle through the client:

1. three tenants submit six campaigns over the mini testbed's responsive
   windows, with different priorities (``interactive`` / ``normal`` /
   ``batch``) — the WDRR scheduler interleaves them fairly;
2. a tenant with a deliberately tight backlog policy gets a submission
   rejected with HTTP 429 (admission control is synchronous, nothing is
   silently dropped);
3. one queued campaign is cancelled before it ever leases;
4. the daemon runs the queue to idle on a two-thread fleet, then the
   script prints every campaign's terminal state, the per-tenant
   time-to-first-result quantiles from ``/v1/status``, and a result
   sample fetched over HTTP;
5. isolation is asserted: each tenant's rows live in that tenant's own
   store namespace, every line of a campaign's event log carries the
   tenant label, and the cancelled campaign committed nothing.

Everything is seeded, so re-running prints the same campaign ids, the
same row counts, and the same digest-stable stores every time.

Run:  python examples/service_campaigns.py
"""

import json
import tempfile
from pathlib import Path

from repro.service import (
    ApiError,
    ScanService,
    ServiceClient,
    ServiceServer,
    TenantPolicy,
)
from repro.store import ResultStore

#: (tenant, name, window, seed, priority) — windows the mini topology
#: answers, so every campaign commits real periphery rows.
WORK = [
    ("mapper", "backbone", "2001:db8:1:40::/58-64", 3, "interactive"),
    ("mapper", "wan-east", "2001:db8:0::/61-64", 4, "normal"),
    ("census", "lan-5", "2001:db8:1:50::/60-64", 5, "normal"),
    ("census", "lan-6", "2001:db8:1:60::/60-64", 6, "batch"),
    ("audit", "ue-range", "2001:db8:2::/61-64", 7, "batch"),
    ("audit", "core", "2001:db8:1::/59-64", 8, "normal"),
]


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-service-"))
    service = ScanService(
        str(root),
        policies={
            # audit is a good citizen: small backlog, bounded probes.
            "audit": TenantPolicy(max_in_flight=1, max_queued=2,
                                  probe_budget=64),
        },
        default_policy=TenantPolicy(max_in_flight=2),
        max_workers=2,
        seed=1,
        scope="demo",
    )
    server = ServiceServer(service).start()
    client = ServiceClient(server.address)
    print(f"service listening on {server.address} (root {root})\n")

    for tenant, name, window, seed, priority in WORK:
        record = client.submit({
            "tenant": tenant, "name": name, "scan_range": window,
            "seed": seed, "priority": priority, "shards": 2,
        })
        print(f"accepted {record['campaign_id']}  {tenant:<7} {name:<9} "
              f"{priority:<12} budget {record['spec']['scan_range']}")

    # Admission control: audit's backlog policy caps it at two queued
    # campaigns, so a third submission bounces with HTTP 429.
    rejected = None
    try:
        client.submit({"tenant": "audit", "name": "extra",
                       "scan_range": "2001:db8:2::/61-64"})
    except ApiError as exc:
        rejected = exc
        print(f"\nadmission rejected (HTTP {exc.status}): {exc}")
    assert rejected is not None and rejected.status == 429

    # Cancel one queued campaign before the scheduler ever leases it.
    cancelled = client.cancel("demo-0003")
    print(f"cancelled {cancelled['campaign_id']} "
          f"({cancelled['spec']['tenant']}/{cancelled['spec']['name']}) "
          f"while {cancelled['state']}\n")

    service.run_until_idle()

    for record in client.list_campaigns():
        spec = record["spec"]
        meta = record.get("result") or {}
        print(f"{record['campaign_id']}  {spec['tenant']:<7} "
              f"{spec['name']:<9} -> {record['state']:<9} "
              f"validated {meta.get('validated', '-')}")

    status = client.service_status()
    print("\nper-tenant time to first result:")
    for tenant, quantiles in sorted(status["ttfr_seconds"].items()):
        print(f"  {tenant:<7} p50 <= {quantiles['p50']:.2f}s  "
              f"p99 <= {quantiles['p99']:.2f}s  "
              f"({quantiles['count']} campaigns)")

    rows = client.results("demo-0000", limit=3)
    print(f"\nfirst rows of demo-0000 over HTTP ({len(rows)} shown):")
    for row in rows:
        print(f"  {row['target']} -> {row['responder']} ({row['kind']})")

    # --- the isolation contract, asserted -----------------------------
    # Per-tenant stores: every tenant's rows live under its own
    # namespace, and the cancelled campaign committed nothing anywhere.
    states = {r["campaign_id"]: r["state"] for r in client.list_campaigns()}
    assert states["demo-0003"] == "cancelled"
    done = [cid for cid, state in states.items() if state == "done"]
    assert len(done) == len(WORK) - 1
    for tenant in ("mapper", "census", "audit"):
        store = ResultStore(service.stores.store_dir(tenant))
        expected = {
            r["campaign_id"] for r in client.list_campaigns(tenant=tenant)
            if r["state"] == "done"
        }
        assert {s.split("round-")[1] for s in store.snapshots} == expected
        assert store.total_rows > 0
    # Tenant labels: every record of a campaign's log names its tenant.
    log_path = root / "logs" / "demo-0000.ndjson"
    records = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert records and all(r.get("tenant") == "mapper" for r in records)

    server.stop()
    print("\nPer-tenant stores are disjoint, the cancelled campaign "
          "committed nothing,\nand every event-log line carries its "
          "tenant label — all asserted above.")


if __name__ == "__main__":
    main()
