#!/usr/bin/env python3
"""Reproduce §VI-B's global survey: scan every advertised BGP prefix.

Builds the synthetic world of BGP-advertised IPv6 prefixes (the Routeviews
substitute), sweeps the 16-bit sub-prefix space of each, locates routing
loops with the h/h+2 method, and attributes them to ASes and countries
(Table IX, Figure 5).

Run:  python examples/bgp_survey.py
"""

from collections import Counter

from repro.discovery.periphery import discover
from repro.loop.bgp import build_global_internet
from repro.loop.detector import find_loops


def main() -> None:
    world = build_global_internet(seed=7, scale=2_000, n_tail_ases=120)
    print(f"BGP table: {len(world.table)} advertised prefixes, "
          f"{len(world.network.devices) - 2:,} devices "
          f"across {len({a.country for a in world.ases})} countries\n")

    total_last_hops = 0
    loop_addrs = []
    for as_truth in world.ases:
        census = discover(world.network, world.vantage, as_truth.scan_spec,
                          seed=1)
        total_last_hops += census.n_unique
        survey = find_loops(world.network, world.vantage, as_truth.scan_spec,
                            seed=2)
        loop_addrs.extend(r.last_hop for r in survey.records)

    asns, countries = Counter(), Counter()
    for addr in loop_addrs:
        info = world.table.lookup(addr)
        asns[info.asn] += 1
        countries[info.country] += 1

    print(f"Last hops discovered : {total_last_hops:,} (paper: 4.0M)")
    print(f"With routing loop    : {len(loop_addrs):,} "
          f"({100 * len(loop_addrs) / total_last_hops:.1f}%; paper: 3.2%)")
    print(f"Loop ASes            : {len(asns)} of {len(world.ases)} "
          f"(paper: 3,877 of 6,911)")
    print(f"Loop countries       : {len(countries)} "
          f"(paper: 132 of 170)\n")

    print("Top loop origin ASes (Figure 5a):")
    for asn, count in asns.most_common(10):
        print(f"  AS{asn:<6d} {count:4d} loop devices")
    print("\nTop loop countries (Figure 5b; paper: BR CN EC VN US MM ...):")
    for country, count in countries.most_common(10):
        print(f"  {country}  {count:4d} loop devices")


if __name__ == "__main__":
    main()
