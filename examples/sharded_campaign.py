#!/usr/bin/env python3
"""Sharded campaign: parallel scanning with checkpoint/resume.

Splits one ISP block's /64 window into four ZMap-style permutation shards,
runs them through the campaign runner with a checkpoint directory, then
simulates the scanner host dying mid-shard and resumes — completed shards
re-send zero probes, the interrupted shard fast-forwards to its last
checkpoint, and the merged census is identical to an uninterrupted run.

Run:  python examples/sharded_campaign.py
"""

import tempfile

from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec, ProgressMonitor, WorkerInterrupted
from repro.net.spec import TopologySpec

PROFILE = "in-jio-broadband"
SEED = 1


def make_campaign(scan_spec: str, checkpoint_dir: str, resume: bool = False):
    return Campaign(
        TopologySpec.deployment(profiles=(PROFILE,), scale=20_000, seed=SEED),
        {"jio": ScanConfig(scan_range=ScanRange.parse(scan_spec), seed=SEED)},
        probe=ProbeSpec.for_seed(SEED),
        shards=4,
        executor="thread",
        workers=4,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=64,
        resume=resume,
        monitor=ProgressMonitor(),
    )


def main() -> None:
    deployment = TopologySpec.deployment(
        profiles=(PROFILE,), scale=20_000, seed=SEED
    ).build()
    isp = deployment.handle.isps[PROFILE]
    print(f"Scan window : {isp.scan_spec} "
          f"({1 << isp.window_bits:,} sub-prefixes over 4 shards)")

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as ckdir:
        # First attempt: inject a worker death partway into shard 2, the
        # way a 48-hour campaign loses its host partway through.
        print("\n-- first attempt (worker dies mid-shard) --")
        campaign = make_campaign(isp.scan_spec, ckdir)
        jobs = campaign.plan()
        jobs[2].interrupt_after = jobs[2].config.max_probes or 100
        try:
            campaign.run(jobs=jobs)
        except WorkerInterrupted as exc:
            print(f"campaign killed: {exc}")

        # Resume: done shards restore from checkpoint (zero probes), the
        # partial shard skips ahead, and the merge dedups across shards.
        print("\n-- resume --")
        result = make_campaign(isp.scan_spec, ckdir, resume=True).run()

    print(f"\nProbes sent on resume : {result.sent_this_run:,} "
          f"(of {result.stats.sent:,} total)")
    print(f"Shards from checkpoint: {result.shards_from_checkpoint}/4")
    print(f"Unique peripheries    : "
          f"{len({r.responder.value for r in result.results['jio'].results})} "
          f"(hit rate {result.stats.hit_rate:.2%})")


if __name__ == "__main__":
    main()
