#!/usr/bin/env python3
"""Reproduce Table II: the periphery census across all fifteen sample blocks.

Builds the full twelve-ISP deployment, runs the Table I subnet-boundary
inference and the Table II discovery sweep per block, and prints the
paper-vs-measured comparison tables plus the Table III IID analysis.

Run:  python examples/periphery_census.py [scale]
      (scale defaults to 20000; smaller = more devices = slower + closer
      absolute counts; the paper's counts correspond to scale=1)
"""

import sys

from repro import build_deployment, discover, infer_subprefix_length
from repro.analysis.tables import (
    table1_subnet_inference,
    table2_periphery,
    table3_iid,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 20_000.0
    print(f"Building the simulated IPv6 Internet at scale 1/{scale:g} ...")
    deployment = build_deployment(scale=scale, seed=7)
    total = sum(isp.n_devices for isp in deployment.isps.values())
    print(f"  {len(deployment.isps)} blocks, {total:,} periphery devices\n")

    # -- Table I: infer each block's delegation length --------------------
    inferences = {}
    for key, isp in deployment.isps.items():
        inferences[key] = infer_subprefix_length(
            deployment.network, deployment.vantage, isp.scan_base, seed=11
        )
    print(table1_subnet_inference(inferences).render())

    # -- Table II: one sweep per block -------------------------------------
    censuses = {}
    for key, isp in deployment.isps.items():
        censuses[key] = discover(
            deployment.network, deployment.vantage, isp.scan_spec, seed=3
        )
        print(f"  scanned {key}: {censuses[key].n_unique} last hops "
              f"({censuses[key].stats.sent:,} probes)")
    print()
    print(table2_periphery(censuses, scale).render())
    print()

    # -- Table III: IID mix over everything --------------------------------
    addrs = [r.last_hop for c in censuses.values() for r in c.records]
    print(table3_iid(addrs).render())


if __name__ == "__main__":
    main()
