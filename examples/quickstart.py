#!/usr/bin/env python3
"""Quickstart: discover IPv6 peripheries on one simulated ISP block.

Builds a scaled-down replica of Reliance Jio's /32 (one of the paper's
fifteen sample blocks), runs one XMap sweep of its /64 sub-prefix window,
and prints what the probing exposed — the paper's core result in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import build_deployment, discover, profile_by_key


def main() -> None:
    # One ISP block, populations scaled to 1/20000 of the paper's counts.
    deployment = build_deployment(
        profiles=[profile_by_key("in-jio-broadband")], scale=20_000, seed=1
    )
    isp = deployment.isps["in-jio-broadband"]
    print(f"Simulated block : {isp.profile.block} ({isp.profile.isp})")
    print(f"Scan window     : {isp.scan_spec}  "
          f"({1 << isp.window_bits:,} sub-prefixes, {isp.n_devices} customers)")

    # The paper's technique: one probe per sub-prefix, random IID — the
    # nonexistent destination forces the periphery to reveal itself with an
    # ICMPv6 Destination Unreachable.
    census = discover(deployment.network, deployment.vantage, isp.scan_spec)

    print(f"\nDiscovered {census.n_unique} unique last hops "
          f"({census.stats.sent:,} probes, "
          f"hit rate {census.stats.hit_rate:.2%})")
    print(f"  same-/64 replies : {census.same_pct:.1f}%  (paper: 99.8%)")
    print(f"  unique /64s      : {census.unique64_pct:.1f}%  (paper: 100.0%)")
    print(f"  EUI-64 addresses : {census.eui64_pct:.1f}%  (paper: 1.4%)")

    print("\nFirst five discoveries:")
    for record in census.records[:5]:
        mac = f"  MAC {record.mac}" if record.mac else ""
        print(f"  {record.last_hop}  [{record.iid_class.value}]"
              f"  via {record.reply_kind.value}{mac}")


if __name__ == "__main__":
    main()
