#!/usr/bin/env python3
"""Longitudinal measurement through the result store (the Nov→Dec gap).

The paper's discovery census (November 2020) and loop survey (December
2020) are separated by weeks of churn.  This example reproduces the
longitudinal workflow on the store: a sharded campaign scans one ISP block
and commits snapshot ``round-1``; a fault schedule then withdraws a
quarter of the customer delegations at the ISP edge (``route-flap``
covering the whole rescan), the identical campaign re-runs as ``round-2``,
and ``repro-xmap store diff`` reports the churn.  Because the injected
fault set is known exactly, the example *asserts* the stable/lost split
matches the flap window — the diff is checked, not just printed.

Run:  python examples/longitudinal_churn.py
"""

import sys
import tempfile

from repro.analysis.churn import ROUND_A, ROUND_B, run_churn_experiment
from repro.cli import main as repro_xmap


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="churn-store-") as store_dir:
        run = run_churn_experiment(store_dir)

        print(run.render())
        print()

        # The same report, straight off the committed store via the CLI.
        print(f"$ repro-xmap store diff <store> {ROUND_A} {ROUND_B}")
        repro_xmap(["store", "diff", store_dir, ROUND_A, ROUND_B])

        # The diff must reproduce the injected churn *exactly*: every lost
        # responder sits behind a flapped delegation, every stable one
        # behind an unflapped one, and withdrawals mint no responders.
        run.verify()
        print(
            f"\nchurn check passed: {len(run.report.lost)} lost == "
            f"{len(run.flapped)} flapped delegation(s), "
            f"{len(run.report.stable)} stable, 0 new"
        )


if __name__ == "__main__":
    sys.exit(main())
