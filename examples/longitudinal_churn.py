#!/usr/bin/env python3
"""Longitudinal measurement under prefix churn (the Nov→Dec gap).

The paper's discovery census (November 2020) and loop survey (December
2020) are separated by weeks of DHCPv6-PD churn.  This example scans one
block, rotates a fraction of its customers onto fresh delegations, rescans,
and reports what a longitudinal analyst would see: stable population size,
decayed address overlap for same-model customers, stable WAN identities for
delegated-prefix customers, and unchanged vulnerability rates.

Run:  python examples/longitudinal_churn.py
"""

from repro import build_deployment, discover, profile_by_key
from repro.isp.rotation import rotate_delegations
from repro.loop.detector import find_loops


def overlap(a, b) -> float:
    sa = {r.last_hop.value for r in a.records}
    sb = {r.last_hop.value for r in b.records}
    return len(sa & sb) / len(sa | sb) if (sa or sb) else 1.0


def main() -> None:
    dep = build_deployment(
        profiles=[profile_by_key("in-jio-broadband"),
                  profile_by_key("cn-unicom-broadband")],
        scale=20_000, seed=11,
    )

    for key, churn in (("in-jio-broadband", 0.4),
                       ("cn-unicom-broadband", 0.4)):
        isp = dep.isps[key]
        november = discover(dep.network, dep.vantage, isp.scan_spec, seed=1)
        loops_nov = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=2)

        report = rotate_delegations(dep, isp, churn, seed=3)

        december = discover(dep.network, dep.vantage, isp.scan_spec, seed=4)
        loops_dec = find_loops(dep.network, dep.vantage, isp.scan_spec, seed=5)

        print(f"{isp.profile.isp} ({isp.profile.scan_label}), "
              f"{report.rotated}/{isp.n_devices} customers rebound:")
        print(f"  population    : {november.n_unique} -> {december.n_unique}")
        print(f"  address overlap Nov/Dec: {overlap(november, december):.0%} "
              f"({'same-model: addresses rotate' if isp.profile.same_frac > 0.5 else 'diff-model: WAN identities persist'})")
        print(f"  loop devices  : {loops_nov.n_unique} -> {loops_dec.n_unique} "
              "(vulnerability travels with firmware, not prefixes)\n")


if __name__ == "__main__":
    main()
