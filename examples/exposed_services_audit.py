#!/usr/bin/env python3
"""Reproduce §V: the unintended-exposed-services audit.

Discovers peripheries on the three Chinese broadband blocks (the paper's
service hot spots), sweeps the eight service/port pairs of Table VI against
every discovery, identifies vendors, and prints the Table VII/VIII-style
findings: who exposes what, running which decade-old software, with how many
CVEs.

Run:  python examples/exposed_services_audit.py
"""

from collections import Counter

from repro import build_deployment, discover, profile_by_key, VendorIdentifier
from repro.analysis.tables import table7_services, table8_software
from repro.services.cve import DEFAULT_CVE_DB, family_of
from repro.services.zgrab import AppScanner

BLOCKS = ("cn-telecom-broadband", "cn-unicom-broadband", "cn-mobile-broadband")


def main() -> None:
    deployment = build_deployment(
        profiles=[profile_by_key(k) for k in BLOCKS], scale=20_000, seed=7
    )

    censuses, app_results = {}, {}
    scanner = AppScanner(deployment.network, deployment.vantage)
    for key in BLOCKS:
        isp = deployment.isps[key]
        census = discover(deployment.network, deployment.vantage,
                          isp.scan_spec, seed=3)
        censuses[key] = census
        app_results[key] = scanner.scan(census.last_hop_addresses())
        alive = len(app_results[key].alive_targets())
        print(f"{isp.profile.isp:10s}: {census.n_unique:5d} peripheries, "
              f"{alive:5d} with >=1 exposed service "
              f"({100 * alive / max(1, census.n_unique):.1f}%)")

    print()
    sizes = {k: censuses[k].n_unique for k in BLOCKS}
    print(table7_services(app_results, sizes, 20_000).render())
    print()
    print(table8_software(app_results.values(), 20_000).render())

    # Vendor attribution of the exposure (Figure 2's reading).
    print("\nWho exposes services?")
    vid = VendorIdentifier(deployment.catalog)
    exposure = Counter()
    for key in BLOCKS:
        devices = vid.identify(
            censuses[key].records, app_results[key].observations
        )
        vendor_of = {d.last_hop.value: d.vendor for d in devices}
        for target in app_results[key].alive_targets():
            vendor = vendor_of.get(target.value)
            if vendor:
                exposure[vendor] += 1
    for vendor, count in exposure.most_common(8):
        print(f"  {vendor:15s} {count:5d} service-exposing devices")

    # The paper's version-lag headline, recomputed from the measurements.
    print("\nVersion lag of the dominant DNS software:")
    dns = Counter()
    for result in app_results.values():
        for obs in result.observations:
            if obs.alive and obs.service == "DNS/53" and obs.software:
                dns[(obs.software.name, family_of(obs.software.name,
                                                   obs.software.version))] += 1
    for (name, fam), count in dns.most_common(4):
        info = DEFAULT_CVE_DB.info(name, fam)
        lag = f"{info.lag_years(2020)} years old, {info.cve_count} CVEs" \
            if info else "unknown"
        print(f"  {name} {fam}: {count} devices ({lag})")


if __name__ == "__main__":
    main()
