#!/usr/bin/env python3
"""Reproduce the paper's entire evaluation in one command.

Runs every pipeline (Tables I-XII, Figures 2/3/5/6, the amplification
attack) and writes the consolidated paper-vs-measured report to
``reproduction_report.txt``.

Run:  python examples/full_reproduction.py [scale]
      (default scale 50000 keeps this example fast; 20000 matches the
      benchmark suite, 1000 gives counts at 1/1000 of the paper's)
"""

import sys
import time

from repro.analysis.reproduce import reproduce_all


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 50_000.0
    started = time.time()

    def progress(message: str) -> None:
        print(f"[{time.time() - started:6.1f}s] {message}", flush=True)

    run = reproduce_all(scale=scale, seed=7, progress=progress)

    out_path = "reproduction_report.txt"
    with open(out_path, "w") as handle:
        handle.write(run.report() + "\n")
    progress(f"report written to {out_path} "
             f"({len(run.report().splitlines())} lines)")

    total_devices = sum(c.n_unique for c in run.censuses.values())
    total_loops = sum(s.n_unique for s in run.loop_surveys.values())
    alive = {
        o.target
        for r in run.app_results.values()
        for o in r.observations
        if o.alive
    }
    print(f"\nHeadlines at scale 1/{scale:g}:")
    print(f"  peripheries discovered : {total_devices:,} (paper: 52.5M)")
    print(f"  with exposed services  : {len(alive):,} (paper: 4.7M)")
    print(f"  loop-vulnerable        : {total_loops:,} (paper: 5.8M)")


if __name__ == "__main__":
    main()
