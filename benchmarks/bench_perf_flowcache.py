"""Route flow-cache A/B: repeated-destination forwarding throughput.

A periphery scan touches each /64 once, so the flow cache mostly
accelerates the *reply* direction there.  Where it pays off directly is
repeated-destination traffic — the §VI routing-loop amplification shapes,
retransmission-heavy probing, or any workload revisiting the same
delegated prefixes.  This bench drives the same packet stream through the
mini topology with the cache on (headline, via pytest-benchmark) and off
(A/B timer), asserts delivery is identical, and records the hit rate.
"""

import time

from repro.net.packet import echo_request
from repro.net.testbed import MiniTopology, build_mini

from benchmarks.conftest import write_bench_json, write_result
from repro.analysis.report import ComparisonTable

N_TARGETS = 64
ROUNDS = 25  # each target injected this many times; cache steady-state


def _fresh(flow_cache: bool):
    topo = build_mini(flow_cache=flow_cache)
    targets = []
    for i in range(N_TARGETS):
        # Few distinct /64s, many addresses: the cache's favourable shape.
        prefix = (MiniTopology.SUBNET_OK if i % 2 else
                  MiniTopology.SUBNET_VULN)
        targets.append(prefix.address(0x1000 + i))
    packets = [
        echo_request(topo.vantage.primary_address, target, i & 0xFFFF,
                     (i >> 16) & 0xFFFF, b"\x00" * 8)
        for i, target in enumerate(targets)
    ]
    return topo, packets


def _drive(topo, packets) -> int:
    net = topo.network
    inject = net.inject
    vantage = topo.vantage
    delivered = 0
    for _ in range(ROUNDS):
        for packet in packets:
            inbox, _trace = inject(packet, vantage)
            delivered += len(inbox)
    return delivered


def test_perf_flowcache_ab(benchmark):
    injections = N_TARGETS * ROUNDS

    # Headline: cache on, fresh topology per round so warmup is included.
    def setup():
        return (_fresh(flow_cache=True),), {}

    def run(state):
        topo, packets = state
        return topo, _drive(topo, packets)

    cached_topo, cached_delivered = benchmark.pedantic(
        run, setup=setup, iterations=1, rounds=3
    )
    cached_wall = benchmark.stats.stats.mean
    cached_net = cached_topo.network

    # A/B: the identical stream with the fast path disabled.
    off_topo, off_packets = _fresh(flow_cache=False)
    started = time.perf_counter()
    uncached_delivered = _drive(off_topo, off_packets)
    uncached_wall = time.perf_counter() - started

    assert cached_delivered == uncached_delivered
    assert off_topo.network.flow_hits == 0  # escape hatch truly bypasses
    hits, misses = cached_net.flow_hits, cached_net.flow_misses
    assert hits > misses  # steady-state traffic is dict probes

    cached_pps = injections / cached_wall if cached_wall else 0.0
    uncached_pps = injections / uncached_wall if uncached_wall else 0.0
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    table = ComparisonTable(
        "Route flow cache A/B (repeated-destination forwarding)",
        ("Run", "injections", "delivered", "pps"),
    )
    table.add("flow cache on", injections, cached_delivered,
              f"{cached_pps:,.0f}")
    table.add("flow cache off", injections, uncached_delivered,
              f"{uncached_pps:,.0f}")
    table.note(
        f"speedup {cached_pps / uncached_pps:.2f}x, hit rate "
        f"{hit_rate:.1%} ({hits} hits / {misses} misses); "
        f"delivery identical: {cached_delivered == uncached_delivered}"
    )
    write_result("perf_flowcache", table)
    write_bench_json(
        "perf_flowcache",
        injections=injections,
        cached_wall_pps=cached_pps,
        uncached_wall_pps=uncached_pps,
        speedup=cached_pps / uncached_pps if uncached_pps else 0.0,
        flow_hits=hits,
        flow_misses=misses,
        hit_rate=hit_rate,
        delivered=cached_delivered,
    )
