"""§VII — mitigation effectiveness.

The paper proposes three mitigations; two are mechanically testable here:

1. **RFC 7084 discard routes** ("any packet … in the prefix(es) delegated to
   the CE router but not … assigned by the CE router to the LAN must be
   dropped"): applying the fix to every vulnerable CPE must drive the loop
   survey to zero and the amplification to nothing.
2. **ICMPv6 probe filtering at the periphery**: a CPE that drops inbound
   echo requests for nonexistent destinations stops revealing itself, i.e.
   the discovery census collapses — quantifying the trade-off the paper
   asks RFC groups to revisit (RFC 4890 says such filtering is unnecessary).
"""

from repro.analysis.report import ComparisonTable
from repro.discovery.periphery import discover
from repro.isp.builder import build_deployment
from repro.isp.profiles import profile_by_key
from repro.loop.attack import run_loop_attack
from repro.loop.detector import find_loops
from repro.net.device import CpeRouter
from repro.net.packet import MAX_HOP_LIMIT

from benchmarks.conftest import SEED, write_result

KEY = "cn-unicom-broadband"


def test_mitigation_rfc7084(benchmark):
    deployment = build_deployment(
        profiles=[profile_by_key(KEY)], scale=20_000, seed=SEED
    )
    isp = deployment.isps[KEY]

    before = find_loops(
        deployment.network, deployment.vantage, isp.scan_spec, seed=SEED
    )
    assert before.n_unique > 0

    victim = isp.truth_by_last_hop()[before.records[0].last_hop.value]
    target = victim.delegated.subprefix(5, 64).address(0x77)
    deployment.network.advance(5.0)
    attack_before = run_loop_attack(
        deployment.network, deployment.vantage, target,
        isp.router.name, victim.name, hop_limit=MAX_HOP_LIMIT,
    )

    def apply_fix():
        patched = 0
        for device in deployment.network.devices.values():
            if isinstance(device, CpeRouter) and (
                device.vulnerable_wan or device.vulnerable_lan
            ):
                device.apply_rfc7084_fix()
                patched += 1
        return patched

    patched = benchmark.pedantic(apply_fix, iterations=1, rounds=1)

    deployment.network.advance(5.0)
    after = find_loops(
        deployment.network, deployment.vantage, isp.scan_spec, seed=SEED + 1
    )
    deployment.network.advance(5.0)
    attack_after = run_loop_attack(
        deployment.network, deployment.vantage, target,
        isp.router.name, victim.name, hop_limit=MAX_HOP_LIMIT,
    )

    # The census must survive the fix: the same devices stay discoverable.
    census = discover(
        deployment.network, deployment.vantage, isp.scan_spec, seed=SEED + 2
    )

    table = ComparisonTable(
        "§VII mitigation — RFC 7084 discard routes on every vulnerable CPE",
        ("Metric", "before fix", "after fix"),
    )
    table.add("loop devices found", before.n_unique, after.n_unique)
    table.add("attack link crossings", attack_before.amplification,
              attack_after.amplification)
    table.add("devices still discoverable", "-", census.n_unique)
    table.note(f"{patched} CPEs patched")
    write_result("mitigation_rfc7084", table)

    assert after.n_unique == 0
    assert attack_before.amplification > 200
    assert attack_after.amplification <= 2
    assert census.n_unique == isp.n_devices  # discovery is unaffected


def test_mitigation_opaque_iids(benchmark):
    """§VII mitigation 1: temporary/opaque IIDs instead of EUI-64.

    Rebuild the same block with RFC 7217-style addressing (no EUI-64) and
    compare what the identification pipeline can still learn: MAC-channel
    identification collapses, only banner identification survives —
    quantifying why the paper urges retiring EUI-64.
    """
    import dataclasses

    from repro.discovery.vendor_id import VendorIdentifier
    from repro.services.zgrab import AppScanner

    def identified_count(eui64_frac):
        profile = dataclasses.replace(
            profile_by_key("cn-unicom-broadband"),
            key=f"unicom-eui-{eui64_frac}",
            eui64_frac=eui64_frac,
        )
        deployment = build_deployment(
            profiles=[profile], scale=20_000, seed=SEED
        )
        isp = deployment.isps[profile.key]
        census = discover(
            deployment.network, deployment.vantage, isp.scan_spec, seed=SEED
        )
        app = AppScanner(deployment.network, deployment.vantage).scan(
            census.last_hop_addresses()
        )
        devices = VendorIdentifier(deployment.catalog).identify(
            census.records, app.observations
        )
        by_method = {"mac": 0, "banner": 0}
        for device in devices:
            by_method[device.method] += 1
        return census.n_unique, by_method

    n_before, before = benchmark.pedantic(
        lambda: identified_count(0.533), iterations=1, rounds=1
    )
    n_after, after = identified_count(0.0)

    table = ComparisonTable(
        "§VII mitigation — opaque IIDs replace EUI-64 (Unicom broadband)",
        ("Population", "discovered", "identified via MAC",
         "identified via banner"),
    )
    table.add("EUI-64 at 53.3% (as measured)", n_before, before["mac"],
              before["banner"])
    table.add("opaque IIDs everywhere", n_after, after["mac"],
              after["banner"])
    table.note("discovery is unaffected — the paper's point that opaque "
               "IIDs stop tracking/attribution, not exposure")
    write_result("mitigation_opaque_iids", table)

    assert before["mac"] > 0
    assert after["mac"] == 0
    assert after["banner"] > 0  # service banners still identify
    assert n_after == n_before  # discoverability is unchanged


def test_mitigation_probe_filtering(benchmark):
    """Dropping probe-elicited errors hides the periphery entirely."""
    deployment = build_deployment(
        profiles=[profile_by_key("in-jio-broadband")], scale=20_000, seed=SEED
    )
    isp = deployment.isps["in-jio-broadband"]

    before = discover(
        deployment.network, deployment.vantage, isp.scan_spec, seed=SEED
    )

    def silence_errors():
        from repro.net.device import ErrorRateLimiter

        for truth in isp.truths:
            device = deployment.network.devices[truth.name]
            device.error_limiter = ErrorRateLimiter(
                rate_per_second=0.0, burst=0.0
            )
        return len(isp.truths)

    benchmark.pedantic(silence_errors, iterations=1, rounds=1)

    after = discover(
        deployment.network, deployment.vantage, isp.scan_spec, seed=SEED + 1
    )

    table = ComparisonTable(
        "§VII mitigation — periphery drops probe-elicited ICMPv6 errors",
        ("Metric", "before", "after"),
    )
    table.add("peripheries discovered", before.n_unique, after.n_unique)
    table.note("RFC 4890 deems such filtering unnecessary; the paper argues "
               "the unreachable side-channel warrants revisiting it")
    write_result("mitigation_filtering", table)

    assert before.n_unique == isp.n_devices
    assert after.n_unique == 0
