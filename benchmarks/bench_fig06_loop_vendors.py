"""Figure 6 — top 5 routing-loop periphery device vendors within top 5 ASes.

Joins the per-ISP loop surveys with vendor identification.  Shape: the loop
vendor ranking is headed by the Chinese CPE fleet (China Mobile, ZTE,
Skyworth, Youhua Tech, StarNet — the paper's top five), with the Chinese
ASes (4134/4837/9808) supplying the bulk of each vendor's loop devices.
"""

from repro.analysis.figures import PAPER_FIG6_VENDORS, figure6_loop_vendors

from benchmarks.conftest import write_result

#: The paper's top loop ASes mapped onto our profile keys.
AS_BLOCKS = {
    "AS4134": "cn-telecom-broadband",
    "AS4837": "cn-unicom-broadband",
    "AS9808": "cn-mobile-broadband",
}


def test_fig06_loop_vendors(benchmark, loop_surveys, identified):
    vendor_of = {
        d.last_hop.value: d.vendor
        for devices in identified.values()
        for d in devices
    }

    def build_matrix():
        per_as = {}
        for as_label, key in AS_BLOCKS.items():
            counts = {}
            for record in loop_surveys[key].records:
                vendor = vendor_of.get(record.last_hop.value)
                if vendor is not None:
                    counts[vendor] = counts.get(vendor, 0) + 1
            per_as[as_label] = counts
        return per_as

    per_as = benchmark(build_matrix)

    table = figure6_loop_vendors(per_as)
    write_result("fig06_loop_vendors", table)

    totals = {}
    for counts in per_as.values():
        for vendor, count in counts.items():
            totals[vendor] = totals.get(vendor, 0) + count
    ranking = sorted(totals, key=totals.get, reverse=True)

    assert ranking, "no identified loop devices"
    assert ranking[0] == "China Mobile"  # the paper's dominant loop vendor
    overlap = len(set(ranking[:5]) & set(PAPER_FIG6_VENDORS))
    assert overlap >= 3
    # AS9808 (China Mobile's AS) supplies most China Mobile loop devices.
    assert per_as["AS9808"].get("China Mobile", 0) >= per_as["AS4837"].get(
        "China Mobile", 0
    )
