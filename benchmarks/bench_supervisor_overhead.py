"""Supervisor fast-path cost: supervision enabled but never needed.

The robustness contract mirrors the fault-layer one: a campaign that never
fails a shard must not pay for the crash-recovery machinery.  A disabled
:class:`~repro.engine.SupervisorPolicy` resolves to the stock fail-fast
dispatch loop (``Campaign.supervisor_policy is None`` — literally the same
code path), and an *enabled* supervisor on a clean run costs only the
per-batch drain check and the per-shard bookkeeping dictionary lookups;
neither may tax the §IV-E probing budget.  This bench runs the same
4-shard campaign twice — policy disabled, and enabled with a retry budget
armed — and asserts the difference stays under the <2% budget.

The measurement is the same defensive ABBA-paired scheme as
``bench_faults_overhead``: rounds alternate which configuration goes
first, and the reported overhead is the smaller of the per-config-minima
ratio and the median per-pair ratio, so one noisy CI round can't fail the
gate while a real regression (which moves both estimators) still does.

``REPRO_SUPERVISOR_TOLERANCE`` (default 0.02 — the <2% budget) sets the
failure threshold.
"""

import os
import statistics
import time

from repro.analysis.report import ComparisonTable
from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, SupervisorPolicy
from repro.net.spec import TopologySpec

from benchmarks.conftest import SEED, write_bench_json, write_result

ROUNDS = 12
SHARDS = 4
SPEC = "2001:db8:1::/56-64"  # 256 targets over the mini topology
TOLERANCE = float(os.environ.get("REPRO_SUPERVISOR_TOLERANCE", "0.02"))


def test_supervisor_clean_run_overhead():
    spec = TopologySpec.mini(seed=SEED)
    prebuilt = spec.build()

    def one_round(supervised: bool):
        config = ScanConfig(scan_range=ScanRange.parse(SPEC), seed=SEED)
        policy = SupervisorPolicy(enabled=supervised, retry_budget=8)
        campaign = Campaign(
            spec,
            {"bench": config},
            shards=SHARDS,
            executor="serial",
            prebuilt=prebuilt,
            supervisor=policy,
        )
        started = time.perf_counter()
        result = campaign.run()
        wall = time.perf_counter() - started
        assert result.degraded == [] and not result.drained
        return wall, result.stats.sent

    one_round(False), one_round(True)  # warm both paths before timing
    disabled = enabled = float("inf")
    sent = 0
    pair_ratios = []
    for i in range(ROUNDS):
        if i % 2 == 0:  # ABBA: alternate which config goes first
            d, sent = one_round(False)
            e, _ = one_round(True)
        else:
            e, _ = one_round(True)
            d, sent = one_round(False)
        disabled = min(disabled, d)
        enabled = min(enabled, e)
        pair_ratios.append(e / d)
    overhead = min(
        enabled / disabled - 1.0,
        statistics.median(pair_ratios) - 1.0,
    )

    table = ComparisonTable(
        "Supervisor overhead on a clean campaign (min of "
        f"{ROUNDS} interleaved rounds, {SHARDS} shards, {sent} probes)",
        ("Configuration", "best wall", "probes/s"),
    )
    table.add("supervision disabled (stock loop)",
              f"{disabled * 1000:.1f} ms", f"{sent / disabled:,.0f}")
    table.add("supervision enabled (breakers + budget armed)",
              f"{enabled * 1000:.1f} ms", f"{sent / enabled:,.0f}")
    table.note(
        f"overhead {overhead:+.2%} (budget {TOLERANCE:.0%})"
    )
    write_result("supervisor_overhead", table)
    write_bench_json(
        "supervisor_overhead",
        rounds=ROUNDS,
        shards=SHARDS,
        probes=sent,
        disabled_wall_seconds=disabled,
        enabled_wall_seconds=enabled,
        disabled_pps=sent / disabled,
        enabled_pps=sent / enabled,
        overhead=overhead,
        tolerance=TOLERANCE,
    )

    assert overhead < TOLERANCE, (
        f"idle supervisor cost {overhead:.2%} (budget {TOLERANCE:.0%})"
    )
