"""Scan-service performance: admission throughput and burst latency.

Two headline numbers for the multi-tenant daemon, the first gated by
``check_regression.py`` (gate name ``service``):

* **Admission** (``accepted_per_sec``): submissions stream through
  :meth:`~repro.service.queue.CampaignQueue.submit`, each paying policy
  checks plus one durable (tmp + fsync + rename) queue-state write.
  This is the service's front-door rate — the ``/v1/campaigns`` handler
  adds only JSON parsing on top — and the durable save dominates, so a
  regression here means the queue's persistence got more expensive.

* **Burst** (``burst_campaigns_per_sec``, ``ttfr_p99_seconds``): three
  tenants submit twelve campaigns at once; a two-worker fleet drains
  them under WDRR fair-share.  The per-tenant p99 time-to-first-result
  comes from the same histogram the ``/v1/status`` endpoint reports.
  TTFR is bucket-quantised and scheduling-order dependent, so it is
  recorded, not gated.
"""

from __future__ import annotations

import time

from repro.service import CampaignQueue, CampaignSpec, ScanService, TenantPolicy

from benchmarks.conftest import write_bench_json, write_result

SUBMISSIONS = 400
TENANTS = ("mapper", "census", "audit", "survey")

#: The burst workload: every window answers on the mini topology.
BURST = [
    ("mapper", "2001:db8:1:40::/58-64", "interactive"),
    ("mapper", "2001:db8:1:60::/60-64", "normal"),
    ("mapper", "2001:db8:0::/61-64", "normal"),
    ("mapper", "2001:db8:2::/61-64", "batch"),
    ("census", "2001:db8:0::/61-64", "normal"),
    ("census", "2001:db8:1:50::/60-64", "interactive"),
    ("census", "2001:db8:2::/61-64", "batch"),
    ("census", "2001:db8:1:60::/60-64", "normal"),
    ("audit", "2001:db8:1:50::/60-64", "batch"),
    ("audit", "2001:db8:2::/61-64", "normal"),
    ("audit", "2001:db8:0::/61-64", "interactive"),
    ("audit", "2001:db8:1::/59-64", "normal"),
]


def test_service_admission_throughput(tmp_path):
    queue = CampaignQueue(
        str(tmp_path / "queue.json"),
        default_policy=TenantPolicy(max_queued=SUBMISSIONS),
        scope="bench",
    )
    specs = [
        CampaignSpec(
            tenant=TENANTS[i % len(TENANTS)],
            name=f"c{i}",
            scan_range="2001:db8::/60-64",
        )
        for i in range(SUBMISSIONS)
    ]
    started = time.perf_counter()
    for spec in specs:
        queue.submit(spec)
    elapsed = time.perf_counter() - started
    assert queue.depth == SUBMISSIONS

    accepted_per_sec = SUBMISSIONS / elapsed
    write_result(
        "service_admission",
        f"service admission: {SUBMISSIONS} campaigns accepted in "
        f"{elapsed:.3f}s ({accepted_per_sec:,.0f}/s), each with policy "
        f"checks and one durable queue-state write",
    )
    write_bench_json(
        "service",
        submissions=SUBMISSIONS,
        admission_seconds=elapsed,
        accepted_per_sec=accepted_per_sec,
    )


def test_service_multi_tenant_burst(tmp_path):
    service = ScanService(
        str(tmp_path / "svc"),
        default_policy=TenantPolicy(max_in_flight=2),
        max_workers=2,
        seed=1,
        scope="bench",
    )
    for i, (tenant, window, priority) in enumerate(BURST):
        service.submit(CampaignSpec(
            tenant=tenant, name=f"b{i}", scan_range=window,
            seed=i, priority=priority, shards=2,
        ))
    started = time.perf_counter()
    service.run_until_idle()
    wall = time.perf_counter() - started

    done = service.queue.in_state("done")
    assert len(done) == len(BURST)
    status = service.service_status()
    ttfr = status["ttfr_seconds"]
    assert set(ttfr) == {t for t, _, _ in BURST}
    ttfr_p99 = max(q["p99"] for q in ttfr.values())

    burst_campaigns_per_sec = len(BURST) / wall
    lines = [
        f"service burst: {len(BURST)} campaigns / {len(ttfr)} tenants "
        f"drained in {wall:.3f}s ({burst_campaigns_per_sec:.1f}/s) on a "
        f"2-worker fleet",
    ]
    for tenant in sorted(ttfr):
        lines.append(
            f"  {tenant:<7} TTFR p50 <= {ttfr[tenant]['p50']:.2f}s  "
            f"p99 <= {ttfr[tenant]['p99']:.2f}s  "
            f"({ttfr[tenant]['count']} campaigns)"
        )
    write_result("service_burst", "\n".join(lines))

    # Merge into the same BENCH_service.json record the admission bench
    # started, so the gate sees one comparable document.
    import json

    from benchmarks.conftest import RESULTS_DIR

    record_path = RESULTS_DIR / "BENCH_service.json"
    existing = {}
    if record_path.exists():
        existing = {
            k: v for k, v in json.loads(record_path.read_text()).items()
            if k not in ("bench", "scale", "seed", "python")
        }
    write_bench_json(
        "service",
        **existing,
        burst_campaigns=len(BURST),
        burst_tenants=len(ttfr),
        burst_wall_seconds=wall,
        burst_campaigns_per_sec=burst_campaigns_per_sec,
        ttfr_p99_seconds=ttfr_p99,
    )
