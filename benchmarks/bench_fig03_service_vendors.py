"""Figure 3 — results of top 20 periphery device vendors within each service.

The transpose of Figure 2: for each of the eight services, which vendors
supply it.  Shape checks are the paper's §V-B reading of the figure: DNS is
spread across several vendors, SSH is led by Fiberhome (+Youhua), TELNET by
Youhua/ZTE, FTP by Fiberhome, HTTP/8080 by China Mobile.
"""

from repro.analysis.figures import figure3_service_vendors, vendor_service_matrix

from benchmarks.conftest import write_result


def _leaders(matrix, service, top=3):
    counts = [
        (vendor, row.get(service, 0))
        for vendor, row in matrix.items()
        if row.get(service, 0) > 0
    ]
    counts.sort(key=lambda pair: pair[1], reverse=True)
    return [vendor for vendor, _count in counts[:top]]


def test_fig03_service_vendors(benchmark, app_results, identified):
    all_identified = [d for devices in identified.values() for d in devices]
    all_observations = [
        o for result in app_results.values() for o in result.observations
    ]
    matrix = vendor_service_matrix(all_identified, all_observations)

    table = benchmark(lambda: figure3_service_vendors(matrix))
    write_result("fig03_service_vendors", table)

    # HTTP/8080 is China Mobile's service (paper: Jetty fleet).
    assert "China Mobile" in _leaders(matrix, "HTTP/8080", top=2)
    # SSH is led by Fiberhome and/or Youhua Tech.
    assert set(_leaders(matrix, "SSH/22", top=3)) & {"Fiberhome", "Youhua Tech"}
    # FTP is led by Fiberhome/Youhua (GNU Inetutils fleets).
    assert set(_leaders(matrix, "FTP/21", top=3)) & {"Fiberhome", "Youhua Tech"}
    # TELNET is led by Youhua/ZTE/China Unicom.
    assert set(_leaders(matrix, "TELNET/23", top=3)) & {
        "Youhua Tech", "ZTE", "China Unicom"
    }
    # DNS is contributed by several vendors (paper: "numbers of vendors").
    dns_vendors = [v for v, row in matrix.items() if row.get("DNS/53", 0) > 0]
    assert len(dns_vendors) >= 4
