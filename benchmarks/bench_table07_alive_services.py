"""Table VII — alive services on peripheries within each ISP.

The §V sweep: 8 service probes against every discovered periphery.  The
shape checks mirror the paper's headline observations — China Mobile
broadband dominates (HTTP/8080 ~45% of its devices, total alive ~57%),
Unicom broadband is the second hot spot, CenturyLink owns most exposed NTP,
and mobile blocks are nearly service-silent.
"""

import pytest

from repro.analysis.tables import table7_services

from benchmarks.conftest import SCALE, write_result


def test_table7_alive_services(benchmark, deployment, censuses, app_results):
    sizes = {key: censuses[key].n_unique for key in censuses}

    table = benchmark(lambda: table7_services(app_results, sizes, SCALE))
    write_result("table07_alive_services", table)

    def alive_pct(key):
        return 100 * len(app_results[key].alive_targets()) / max(1, sizes[key])

    def service_count(key, service):
        return len(app_results[key].by_service().get(service, []))

    # China Mobile broadband: the paper's hottest block (57.5% alive).
    assert alive_pct("cn-mobile-broadband") == pytest.approx(57.5, abs=12)
    assert service_count("cn-mobile-broadband", "HTTP/8080") > 0.3 * sizes[
        "cn-mobile-broadband"
    ]
    # Unicom broadband second (24.6% alive).
    assert alive_pct("cn-unicom-broadband") == pytest.approx(24.6, abs=10)
    # Mobile networks are near-silent (paper: 0.0-0.1% rows).
    for key in ("cn-unicom-mobile", "cn-mobile-mobile", "us-att-mobile"):
        assert alive_pct(key) < 5

    # NTP concentrates in CenturyLink (paper: 93% of all exposed NTP).
    ntp_total = sum(service_count(k, "NTP/123") for k in app_results)
    if ntp_total:
        centurylink_share = service_count(
            "us-centurylink-broadband", "NTP/123"
        ) / ntp_total
        assert centurylink_share > 0.5

    # Grand total: ~9% of all peripheries expose something.
    grand_alive = sum(len(r.alive_targets()) for r in app_results.values())
    grand_devices = sum(sizes.values())
    assert 100 * grand_alive / grand_devices == pytest.approx(9.0, abs=5)
