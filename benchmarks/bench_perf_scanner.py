"""Scanner performance + the §III-B/§IV-E feasibility arithmetic.

Measures the reproduction's probe throughput against the simulator and
regenerates the paper's wall-clock projections: a 1 Gbps scanner covers all
/64s of a /24 (2^40) in ~8 days and all /60s (2^36) in ~14 hours; the
paper's own 25 kpps budget covers a 32-bit window in ~48 hours.

The headline number is the forwarding fast path end to end: batched target
generation (vectorised SipHash IIDs + primed validation tags) over the
flow-cached simulator.  Two A/B runs — the serial probe loop, and the
batched loop with the flow cache forced off — quantify each layer and prove
all three paths produce the identical reply set.
"""

from repro.analysis.report import ComparisonTable
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.stats import FeasibilityRow, probes_per_second
from repro.core.target import ScanRange
from repro.core.validate import Validator

from benchmarks.conftest import SEED, write_bench_json, write_result


def test_perf_scanner_throughput(benchmark, deployment):
    isp = deployment.isps["in-airtel-mobile"]
    probe = IcmpEchoProbe(Validator(bytes(range(16))))

    def config(**overrides):
        return ScanConfig(
            scan_range=ScanRange.parse(isp.scan_spec),
            seed=SEED,
            max_probes=2000,
            **overrides,
        )

    def run_scan(cfg):
        scanner = Scanner(deployment.network, deployment.vantage, probe, cfg)
        return scanner.run_batched() if cfg.batched else scanner.run()

    # Headline: the full fast path (batched loop + flow cache).
    result = benchmark.pedantic(
        run_scan, args=(config(batched=True),), iterations=1, rounds=3
    )
    # A/B: serial probe loop, and the flow-cache escape hatch.
    serial = run_scan(config())
    no_cache = run_scan(config(batched=True, flow_cache=False))

    # All three paths are the same scan.
    assert serial.dedup_digest() == result.dedup_digest()
    assert no_cache.dedup_digest() == result.dedup_digest()
    assert serial.stats.sent == result.stats.sent

    feasibility = [
        FeasibilityRow("all /64 of a /24 block at 1 Gbps (paper: ~8 days)",
                       40, 1e9),
        FeasibilityRow("all /60 of a /28 block at 1 Gbps (paper: ~14 hours)",
                       36, 1e9),
        FeasibilityRow("32-bit window at 25 kpps (paper: ~48 hours)",
                       32, 25_000 * 94 * 8),
    ]
    table = ComparisonTable(
        "Scanner performance and §III-B feasibility projections",
        ("Projection", "window bits", "duration"),
    )
    for row in feasibility:
        table.add(row.label, row.window_bits, row.human)
    table.note(
        f"measured simulator throughput (fast path): "
        f"{result.stats.wall_pps:,.0f} probes/s wall, "
        f"{result.stats.virtual_pps:,.0f} pps virtual; "
        f"serial loop {serial.stats.wall_pps:,.0f} pps; "
        f"flow cache off {no_cache.stats.wall_pps:,.0f} pps"
    )
    write_result("perf_scanner", table)
    write_bench_json(
        "perf_scanner",
        sent=result.stats.sent,
        validated=result.stats.validated,
        wall_pps=result.stats.wall_pps,
        serial_wall_pps=serial.stats.wall_pps,
        no_flow_cache_wall_pps=no_cache.stats.wall_pps,
        virtual_pps=result.stats.virtual_pps,
        wall_seconds=result.stats.wall_seconds,
        projections={
            row.label: row.seconds for row in feasibility
        },
    )

    # §III-B numbers hold.
    assert 6 <= feasibility[0].seconds / 86400 <= 13
    assert 9 <= feasibility[1].seconds / 3600 <= 20
    assert 40 <= feasibility[2].seconds / 3600 <= 55
    # The paper's <15 Mbps budget sustains 25 kpps echo probes.
    assert probes_per_second(15e6) >= 19_000
    # The virtual pacer enforced the configured rate.
    assert result.stats.virtual_pps <= 25_500
