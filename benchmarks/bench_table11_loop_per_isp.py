"""Table XI — peripheries with the routing loop within each sample ISP.

The depth-first loop experiment on the fifteen sample blocks.  Shape: the
three Chinese broadband blocks carry the overwhelming majority of loop
devices (paper: 5.72M of 5.79M), overwhelmingly on delegated LAN space
("diff"), while India/mobile loop devices answer from the probed /64
("same").
"""

import pytest

from repro.analysis.tables import table11_loops

from benchmarks.conftest import SCALE, write_result


def test_table11_loop_per_isp(benchmark, deployment, loop_surveys):
    table = benchmark(lambda: table11_loops(loop_surveys, SCALE))
    write_result("table11_loop_per_isp", table)

    truth = {
        key: sum(1 for t in isp.truths if t.loop_vulnerable)
        for key, isp in deployment.isps.items()
    }

    for key, survey in loop_surveys.items():
        # No false positives: every confirmed device is truly vulnerable.
        truth_map = deployment.isps[key].truth_by_last_hop()
        for record in survey.records:
            assert truth_map[record.last_hop.value].loop_vulnerable, key
        # High recall (random-IID probes miss a /60 loop with p=1/16).
        if truth[key] >= 10:
            assert survey.n_unique >= 0.8 * truth[key], key

    # Chinese broadband dominates the loop population, as in the paper.
    cn = sum(
        loop_surveys[k].n_unique
        for k in ("cn-telecom-broadband", "cn-unicom-broadband",
                  "cn-mobile-broadband")
    )
    total = sum(s.n_unique for s in loop_surveys.values())
    assert cn / total > 0.9

    # Loop rates per block match the paper's ratios.
    for key in ("cn-mobile-broadband", "cn-unicom-broadband"):
        isp = deployment.isps[key]
        measured_rate = loop_surveys[key].n_unique / isp.n_devices
        assert measured_rate == pytest.approx(isp.profile.loop_frac, abs=0.12)

    # Diff-dominance overall (paper: 95.1% diff).
    records = [r for s in loop_surveys.values() for r in s.records]
    diff = sum(1 for r in records if not r.same_slash64)
    assert diff / len(records) > 0.80

    # Same-/64 loops exist where the paper reports them (Jio/Airtel).
    same_blocks = loop_surveys["in-jio-broadband"].records + loop_surveys[
        "in-airtel-mobile"
    ].records
    assert any(r.same_slash64 for r in same_blocks)
