"""Table X — IID analysis of last hops with the routing-loop vulnerability.

The distinctive finding: the loop population's IID mix differs sharply from
the general population — Low-byte (manually configured router) addresses
jump from ~1% to ~32%, which is the paper's evidence that many loops stem
from manual route misconfiguration, not just CPE firmware.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE10, table10_loop_iid
from repro.discovery.iid import IidClass, iid_breakdown

from benchmarks.conftest import write_result


def test_table10_loop_iid(benchmark, world_loops):
    loop_addrs = [
        record.last_hop
        for survey in world_loops.values()
        for record in survey.records
    ]
    assert loop_addrs, "the BGP sweep found no loops"

    counts = benchmark(lambda: iid_breakdown(a.iid for a in loop_addrs))

    table = table10_loop_iid(loop_addrs)
    write_result("table10_loop_iid", table)

    total = sum(counts.values())
    measured = {cls: 100 * counts[cls] / total for cls in IidClass}
    for cls, paper_pct in PAPER_TABLE10.items():
        assert measured[cls] == pytest.approx(paper_pct, abs=12), cls

    # The headline skew: low-byte addresses are hugely over-represented
    # among loop devices relative to the general population (31.7% vs 1.0%).
    assert measured[IidClass.LOW_BYTE] > 15
