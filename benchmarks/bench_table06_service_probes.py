"""Table VI — probing requests and valid responses of the 8 selected services.

Builds one device running every service, issues each of Table VI's
application-specific requests, and verifies the valid-response criteria:
DNS answers, NTP version reply, FTP 220 greeting, SSH identification string,
TELNET login prompt, HTTP header+body, TLS certificate+cipher.
"""

from repro.analysis.tables import table6_probe_matrix
from repro.net.addr import IPv6Addr, IPv6Prefix
from repro.net.device import Host, Router
from repro.net.network import Network
from repro.services.banner import FtpServer, SshServer, TelnetServer
from repro.services.base import SERVICE_SPECS, Software
from repro.services.dns import DnsForwarder
from repro.services.http import HttpServer, TlsServer
from repro.services.ntp import NtpServer
from repro.services.zgrab import AppScanner

from benchmarks.conftest import write_result


def _make_everything_device():
    network = Network(seed=1)
    vantage = Host("vantage", IPv6Addr.from_string("2001:4860::100"))
    core = Router("core", IPv6Addr.from_string("2001:4860::1"))
    network.register(core)
    network.attach_host(vantage, core)
    core.table.add_connected(vantage.primary_address.prefix(128), "v")

    target = Host("t", IPv6Addr.from_string("2001:db8::1"))
    target.gateway = core  # type: ignore[attr-defined]
    network.register(target)
    core.table.add_connected(IPv6Prefix.from_string("2001:db8::/64"))

    target.bind_service(DnsForwarder(Software("dnsmasq", "2.45")))
    target.bind_service(NtpServer(Software("NTP", "4")))
    target.bind_service(FtpServer(Software("GNU Inetutils", "1.4.1")))
    target.bind_service(SshServer(Software("dropbear", "0.46")))
    target.bind_service(
        TelnetServer(Software("telnetd", ""), vendor_banner="ZTE")
    )
    target.bind_service(
        HttpServer(Software("micro_httpd", "1.0"), vendor="ZTE", model="F660")
    )
    target.bind_service(
        TlsServer(Software("GoAhead Embedded", "2.5.0"), vendor="ZTE",
                  model="F660")
    )
    target.bind_service(
        HttpServer(Software("Jetty", "6.1.26"),
                   spec=SERVICE_SPECS["HTTP/8080"], vendor="ZTE", model="F660")
    )
    return network, vantage, target


def test_table6_service_probes(benchmark):
    network, vantage, target = _make_everything_device()
    scanner = AppScanner(network, vantage)

    def probe_all():
        result = scanner.scan([target.primary_address])
        return {obs.service: obs.alive for obs in result.observations}

    observations = benchmark(probe_all)

    table = table6_probe_matrix(observations)
    write_result("table06_service_probes", table)

    assert all(observations.values()), observations

    # Validate the banner *content* criteria, not just liveness.
    result = scanner.scan([target.primary_address])
    by_service = {o.service: o for o in result.observations}
    assert by_service["DNS/53"].software.name == "dnsmasq"
    assert by_service["NTP/123"].banner == "NTP version 4"
    assert by_service["FTP/21"].software.version == "1.4.1"
    assert by_service["SSH/22"].banner.startswith("SSH-2.0-dropbear")
    assert "login" in by_service["TELNET/23"].banner
    assert by_service["HTTP/80"].login_page
    assert by_service["TLS/443"].vendor_hint == "ZTE F660"
    assert by_service["HTTP/8080"].software.name == "Jetty"
