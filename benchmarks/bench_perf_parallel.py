"""Parallel campaign speedup: 4-shard process pool vs serial baseline.

The paper's §IV-E campaign sustained 25 kpps for 48 hours from one box;
XMap itself shards the permutation across senders to scale beyond that.
This bench runs the same delegated window once serially (1 shard) and once
as a 4-shard process-pool campaign, asserts the reply sets are identical
tuple for tuple, and records the wall-clock speedup.
"""

import os
import time

from repro.analysis.report import ComparisonTable
from repro.core.scanner import ScanConfig
from repro.core.target import ScanRange
from repro.engine import Campaign, ProbeSpec
from repro.net.spec import TopologySpec

from benchmarks.conftest import SCALE, SEED, write_bench_json, write_result

WORKERS = 4


def _campaign(spec, scan_spec, shards, executor, workers=None):
    return Campaign(
        spec,
        {"window": ScanConfig(scan_range=ScanRange.parse(scan_spec), seed=SEED)},
        probe=ProbeSpec.for_seed(SEED),
        shards=shards,
        executor=executor,
        workers=workers,
    )


def test_perf_parallel_speedup(deployment):
    isp = deployment.isps["in-airtel-mobile"]
    # Process workers rebuild this exact block from the spec; the per-ISP
    # RNG streams make the solo rebuild bit-identical to the session
    # deployment's copy of the same block.
    spec = TopologySpec.deployment(
        profiles=("in-airtel-mobile",), scale=SCALE, seed=SEED
    )

    started = time.perf_counter()
    serial = _campaign(spec, isp.scan_spec, 1, "serial").run()
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = _campaign(spec, isp.scan_spec, WORKERS, "process", WORKERS).run()
    parallel_wall = time.perf_counter() - started

    serial_set = {
        (r.responder.value, r.target.value, r.kind)
        for r in serial.results["window"].results
    }
    parallel_set = {
        (r.responder.value, r.target.value, r.kind)
        for r in parallel.results["window"].results
    }
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    cores = len(os.sched_getaffinity(0))
    # Speedup normalised by the parallelism the host could actually grant;
    # the regression gate compares this on starved runners, where raw wall
    # seconds vs a many-core baseline would be meaningless.
    per_worker_efficiency = speedup / min(WORKERS, cores) if cores else 0.0

    table = ComparisonTable(
        "Sharded campaign speedup (4-way process pool)",
        ("Run", "shards", "sent", "validated", "wall"),
    )
    table.add("serial baseline", 1, serial.stats.sent,
              serial.stats.validated, f"{serial_wall:.2f} s")
    table.add(f"process pool ×{WORKERS}", WORKERS, parallel.stats.sent,
              parallel.stats.validated, f"{parallel_wall:.2f} s")
    table.note(
        f"speedup {speedup:.2f}x on {WORKERS} workers across {cores} core(s) "
        f"(expected >1.5x given >={WORKERS} cores); reply sets identical: "
        f"{parallel_set == serial_set}"
    )
    write_result("perf_parallel", table)
    write_bench_json(
        "perf_parallel",
        workers=WORKERS,
        cores=cores,
        serial_wall_seconds=serial_wall,
        parallel_wall_seconds=parallel_wall,
        speedup=speedup,
        per_worker_efficiency=per_worker_efficiency,
        sent=parallel.stats.sent,
        validated=parallel.stats.validated,
        reply_sets_identical=parallel_set == serial_set,
    )

    # The sharded campaign is a partition, not an approximation.
    assert parallel_set == serial_set
    assert parallel.stats.sent == serial.stats.sent
    if cores >= WORKERS:
        # Each worker re-builds the topology, so perfect 4x is impossible;
        # anything below this floor means the pool serialized.
        assert speedup > 1.5, f"speedup {speedup:.2f}x on {cores} cores"
    else:
        # Single-core hosts cannot show wall-clock speedup; bound the
        # orchestration overhead instead (fork + rebuild + result pickling).
        assert parallel_wall < serial_wall * 3, (
            f"process pool overhead {parallel_wall:.2f}s vs "
            f"{serial_wall:.2f}s serial"
        )
