"""Time-series sampling cost: ``--timeseries`` on top of default metrics.

The sampler's contract is that per-probe cost is one attribute load and
one float compare inside ``VirtualPacer.pace`` (the bucket-close walk over
the counter registry only runs once per virtual interval).  This bench
runs the same 2000-probe scan with metrics on and sampling off, and with
sampling at 1 ms of virtual time (~80 bucket closes at the default
25 kpps budget), and asserts the difference stays under the same <5%
observability budget the base telemetry bench enforces.

Shared CI runners are noisy at this granularity, so the measurement is
deliberately defensive: rounds are paired in ABBA order (whichever config
runs first in a pair enjoys a systematic scheduler advantage, alternating
cancels it) and the reported overhead is the smaller of two robust
estimators — the ratio of per-config minima, and the median of per-pair
ratios.  Either alone is an unbiased estimate of the true cost; taking the
min guards the assertion against a single noisy round without hiding a
real regression, which would move both.

``REPRO_OVERHEAD_TOLERANCE`` (default 0.05 — the <5% budget) sets the
failure threshold.
"""

import os
import statistics
import time

from repro.analysis.report import ComparisonTable
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator

from benchmarks.conftest import SEED, write_bench_json, write_result

ROUNDS = 12
PROBES = 2000
INTERVAL = 0.001  # virtual seconds per bucket
TOLERANCE = float(os.environ.get("REPRO_OVERHEAD_TOLERANCE", "0.05"))


def test_timeseries_sampling_overhead(deployment):
    isp = deployment.isps["in-airtel-mobile"]
    probe = IcmpEchoProbe(Validator(bytes(range(16))))

    def one_round(interval: float) -> float:
        config = ScanConfig(
            scan_range=ScanRange.parse(isp.scan_spec),
            seed=SEED,
            max_probes=PROBES,
            trace="off",
            timeseries_interval=interval,
        )
        scanner = Scanner(deployment.network, deployment.vantage, probe,
                          config)
        started = time.perf_counter()
        scanner.run()
        return time.perf_counter() - started

    one_round(0.0), one_round(INTERVAL)  # warm both paths before timing
    plain = sampled = float("inf")
    pair_ratios = []
    for i in range(ROUNDS):
        if i % 2 == 0:  # ABBA: alternate which config goes first
            p = one_round(0.0)
            s = one_round(INTERVAL)
        else:
            s = one_round(INTERVAL)
            p = one_round(0.0)
        plain = min(plain, p)
        sampled = min(sampled, s)
        pair_ratios.append(s / p)
    overhead = min(
        sampled / plain - 1.0,
        statistics.median(pair_ratios) - 1.0,
    )

    table = ComparisonTable(
        "Time-series sampling overhead (min of "
        f"{ROUNDS} interleaved rounds, {PROBES} probes each)",
        ("Configuration", "best wall", "probes/s"),
    )
    table.add("metrics on, sampling off", f"{plain * 1000:.1f} ms",
              f"{PROBES / plain:,.0f}")
    table.add(f"--timeseries {INTERVAL}", f"{sampled * 1000:.1f} ms",
              f"{PROBES / sampled:,.0f}")
    table.note(
        f"overhead {overhead:+.2%} (budget {TOLERANCE:.0%})"
    )
    write_result("timeseries_overhead", table)
    write_bench_json(
        "timeseries_overhead",
        rounds=ROUNDS,
        probes=PROBES,
        interval=INTERVAL,
        plain_wall_seconds=plain,
        sampled_wall_seconds=sampled,
        sampled_pps=PROBES / sampled,
        overhead=overhead,
        tolerance=TOLERANCE,
    )

    assert overhead < TOLERANCE, (
        f"time-series sampling cost {overhead:.2%} "
        f"(budget {TOLERANCE:.0%})"
    )
