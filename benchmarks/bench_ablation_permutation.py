"""Ablation — permutation backend: multiplicative group vs Feistel PRP.

XMap's native design walks a multiplicative group (O(1) state, one modular
multiplication per probe); the Feistel PRP trades throughput for arbitrary
width and O(1) random access.  Both must produce full-cycle permutations;
this bench compares generation throughput and setup cost.
"""

from repro.analysis.report import ComparisonTable
from repro.core.cyclic import CyclicGroupPermutation
from repro.core.feistel import FeistelPermutation

from benchmarks.conftest import write_result

SIZE = 1 << 14


def _drain(perm):
    count = 0
    for _ in perm:
        count += 1
    return count


def test_ablation_cyclic_throughput(benchmark):
    perm = CyclicGroupPermutation(SIZE, seed=1)
    assert benchmark(lambda: _drain(perm)) == SIZE


def test_ablation_feistel_throughput(benchmark):
    perm = FeistelPermutation(SIZE, seed=1)
    assert benchmark(lambda: _drain(perm)) == SIZE


def test_ablation_permutation_comparison(benchmark):
    import time

    rows = []
    for name, cls in (("cyclic", CyclicGroupPermutation),
                      ("feistel", FeistelPermutation)):
        t0 = time.perf_counter()
        perm = cls(SIZE, seed=2)
        setup = time.perf_counter() - t0
        t0 = time.perf_counter()
        drained = _drain(perm)
        walk = time.perf_counter() - t0
        assert drained == SIZE
        rows.append((name, setup, walk, SIZE / walk))

    benchmark(lambda: _drain(CyclicGroupPermutation(SIZE, seed=3)))

    table = ComparisonTable(
        "Ablation — permutation backends over a 2^14 window",
        ("Backend", "setup (s)", "full walk (s)", "indices/s"),
    )
    for name, setup, walk, rate in rows:
        table.add(name, f"{setup:.4f}", f"{walk:.4f}", f"{rate:,.0f}")
    table.note("cyclic = XMap's GMP multiplicative-group design; feistel = "
               "cycle-walking PRP used beyond 72-bit windows")
    write_result("ablation_permutation", table)

    # The cyclic walk (one modmul/index) outpaces the 4-round SipHash PRP.
    cyclic_rate = rows[0][3]
    feistel_rate = rows[1][3]
    assert cyclic_rate > feistel_rate
