"""Baselines vs XMap (§III's efficiency claim, §VIII related work).

Three techniques over the same block and pseudorandom targets:

* **XMap periphery discovery** — one probe per delegated sub-prefix,
  harvesting RFC 4443 unreachables;
* **traceroute discovery** (Rye & Beverly, PAM'20) — same last hops, but a
  whole path walk per target;
* **end-host scanning** — the same probes *counted the classic way* (echo
  replies from live hosts): essentially zero yield at 64 host bits.

Asserted shape: all three agree on *what* the periphery is; XMap needs ~1
probe per discovery, traceroute needs several, and end-host scanning finds
nothing — the paper's "2^(128-64) … to 1" argument as a measurement.
"""

from repro.analysis.report import ComparisonTable
from repro.baselines.endhost import scan_end_hosts
from repro.baselines.traceroute_discovery import discover_by_traceroute
from repro.discovery.periphery import discover

from benchmarks.conftest import SEED, write_result

KEY = "in-jio-broadband"


def test_baseline_comparison(benchmark, deployment):
    isp = deployment.isps[KEY]
    network, vantage = deployment.network, deployment.vantage

    # XMap: the paper's technique.
    xmap = discover(network, vantage, isp.scan_spec, seed=SEED)
    xmap_probes = xmap.stats.sent

    # Traceroute baseline over the same window (time one run).
    tracer = benchmark.pedantic(
        lambda: discover_by_traceroute(
            network, vantage, isp.scan_spec, seed=SEED
        ),
        iterations=1, rounds=1,
    )

    # End-host framing of the same budget.
    endhost = scan_end_hosts(network, vantage, isp.scan_spec, seed=SEED)

    table = ComparisonTable(
        f"Baselines vs XMap on {isp.profile.isp} ({isp.scan_spec})",
        ("Technique", "discoveries", "probes", "probes/discovery"),
    )
    table.add("XMap periphery discovery", xmap.n_unique, xmap_probes,
              f"{xmap_probes / max(1, xmap.n_unique):.1f}")
    table.add("traceroute (Rye & Beverly)", len(tracer.last_hops),
              tracer.probes_sent,
              f"{tracer.probes_per_discovery:.1f}")
    table.add("end-host scanning (live hosts)", endhost.live_hosts,
              endhost.probes, "-" if endhost.live_hosts == 0 else
              f"{endhost.probes / endhost.live_hosts:.1f}")
    table.note("probes/discovery for XMap includes probes into empty "
               "sub-prefixes; per populated delegation it is exactly 1")
    write_result("baseline_comparison", table)

    # The three techniques agree on the periphery population…
    xmap_set = {r.last_hop for r in xmap.records}
    assert tracer.last_hops == xmap_set
    # …but at very different costs.
    xmap_cost = xmap_probes / max(1, xmap.n_unique)
    assert tracer.probes_per_discovery > 2.5 * xmap_cost
    # And end-host scanning finds essentially nothing at 64 host bits.
    assert endhost.live_hosts == 0
    assert endhost.last_hops == xmap.n_unique
