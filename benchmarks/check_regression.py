#!/usr/bin/env python3
"""CI perf-regression gate over the machine-readable bench records.

Every perf bench writes a ``BENCH_<name>.json`` into ``benchmarks/results/``
(see ``write_bench_json`` in ``benchmarks/conftest.py``).  The committed
copies are the baselines; a bench run in CI overwrites the working-tree
copies with fresh measurements.  This script diffs fresh against committed
(via ``git show HEAD:...``, so the overwrite doesn't erase the baseline)
and fails when a headline metric regressed beyond tolerance:

* ``perf_scanner``  — ``wall_pps`` (higher is better), >15% drop fails.
* ``perf_flowcache`` — ``cached_wall_pps`` (higher is better).
* ``perf_parallel`` — ``parallel_wall_seconds`` (lower is better) on hosts
  with at least as many cores as workers; on starved runners (either side
  recorded ``cores < workers``) the gate compares ``per_worker_efficiency``
  = speedup / min(workers, cores) instead, since raw wall seconds against
  a many-core baseline are meaningless there.
* ``faults_overhead`` — ``disabled_pps`` (higher is better): scanner
  throughput with the fault layer compiled in but disabled, so dead-path
  cost added to the probe loop shows up even though the bench's own <2%
  armed-vs-disabled assertion would not catch it.
* ``store_ingest`` — ``ingest_rows_per_sec`` (higher is better): streaming
  segment ingest; a slowdown here turns the result path into the campaign
  bottleneck (the bench itself also asserts ingest ≥ scanner ``wall_pps``).
* ``store_query`` — ``query_rows_per_sec`` (higher is better): /32-prefix
  query over the compacted multi-block corpus, index pruning included.
* ``bgp`` — ``full_solve_prefixes_per_sec`` (higher is better): the ~2k-AS
  path-vector solve + FIB install every campaign shard pays when it
  rebuilds an ``internet`` world from its spec.
* ``timeseries_overhead`` — ``sampled_pps`` (higher is better): scanner
  throughput with ``--timeseries`` sampling armed; the bench's own <5%
  sampled-vs-plain assertion bounds the relative cost, this gate catches
  an absolute slowdown of the sampled path itself.
* ``supervisor_overhead`` — ``disabled_pps`` (higher is better): campaign
  throughput with the crash-recovery supervisor compiled in but disabled
  (the stock dispatch loop), so dead-path cost added to the campaign loop
  shows up even though the bench's own <2% enabled-vs-disabled assertion
  would not catch it.
* ``forwarding`` — ``columnar_pps`` (higher is better): the columnar
  forwarding engine on the loop-amplification workload
  (``bench_perf_forwarding.py``); the bench itself also asserts the >=10x
  columnar-vs-scalar speedup and bit-identical results.
* ``service`` — ``accepted_per_sec`` (higher is better): scan-service
  admission throughput, each submission paying tenant-policy checks plus
  one durable queue-state write (``bench_service.py``); the record also
  carries the multi-tenant burst's wall time and p99 TTFR, recorded but
  not gated (bucket-quantised).

Skips must be honest: a fresh record whose committed baseline is absent
is a hard failure (commit the regenerated ``BENCH_*.json`` with the PR),
as is selecting an unknown gate name or selecting a gate explicitly (via
``--gates``) whose bench produced no fresh record.  Only two cases skip:
a gate left unselected whose bench simply didn't run in this CI job, and
records recorded at a different ``REPRO_SCALE``/``REPRO_SEED`` — those
numbers aren't comparable.

Re-baselining: when a PR legitimately changes performance, run the perf
benches locally (``python -m pytest benchmarks/bench_perf_scanner.py ...``)
and commit the regenerated ``BENCH_*.json`` files together with the code
change; the gate then measures future PRs against the new numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class Verdict:
    bench: str
    metric: str
    baseline: Optional[float]
    fresh: Optional[float]
    failure: Optional[str]  # None = pass
    note: Optional[str] = None  # skip reason / context


def load_fresh(name: str, results_dir: pathlib.Path = RESULTS_DIR
               ) -> Optional[dict]:
    path = results_dir / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def load_baseline(name: str, ref: str = "HEAD",
                  repo_root: pathlib.Path = REPO_ROOT) -> Optional[dict]:
    """The committed bench record at ``ref`` (None if it doesn't exist)."""
    proc = subprocess.run(
        ["git", "-C", str(repo_root), "show",
         f"{ref}:benchmarks/results/BENCH_{name}.json"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def comparable(baseline: dict, fresh: dict) -> Optional[str]:
    """None if the records are comparable, else the mismatch description."""
    for key in ("scale", "seed"):
        if baseline.get(key) != fresh.get(key):
            return (f"{key} differs (baseline {baseline.get(key)!r}, "
                    f"fresh {fresh.get(key)!r})")
    return None


def per_worker_efficiency(record: dict) -> Optional[float]:
    """``per_worker_efficiency`` with a fallback for pre-gate baselines."""
    value = record.get("per_worker_efficiency")
    if value is not None:
        return float(value)
    speedup = record.get("speedup")
    workers = record.get("workers")
    cores = record.get("cores")
    if speedup is None or not workers or not cores:
        return None
    return float(speedup) / min(int(workers), int(cores))


def parallel_metric(baseline: dict, fresh: dict) -> Tuple[str, bool]:
    """(metric name, higher_is_better) for the parallel-campaign gate."""
    starved = any(
        int(r.get("cores", 0)) < int(r.get("workers", 1))
        for r in (baseline, fresh)
    )
    if starved:
        return "per_worker_efficiency", True
    return "parallel_wall_seconds", False


def metric_value(record: dict, metric: str) -> Optional[float]:
    if metric == "per_worker_efficiency":
        return per_worker_efficiency(record)
    value = record.get(metric)
    return None if value is None else float(value)


def check_metric(
    bench: str,
    metric: str,
    higher_is_better: bool,
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Verdict:
    """One pass/fail comparison of a headline metric."""
    mismatch = comparable(baseline, fresh)
    if mismatch is not None:
        return Verdict(bench, metric, None, None, None,
                       note=f"skipped: {mismatch}")
    base = metric_value(baseline, metric)
    new = metric_value(fresh, metric)
    if base is None or new is None or base == 0:
        return Verdict(bench, metric, base, new, None,
                       note="skipped: metric missing in one record")
    ratio = new / base
    if higher_is_better:
        regressed = ratio < 1.0 - tolerance
        direction = "dropped"
    else:
        regressed = ratio > 1.0 + tolerance
        direction = "rose"
    failure = None
    if regressed:
        failure = (
            f"{bench}: {metric} {direction} beyond {tolerance:.0%} "
            f"tolerance — baseline {base:,.2f}, fresh {new:,.2f} "
            f"({abs(1.0 - ratio):.1%} regression)"
        )
    return Verdict(bench, metric, base, new, failure)


#: The gate registry: (gate name, bench record name, metric selector).
#: The gate name is what ``--gates`` selects; the bench name is the
#: ``BENCH_<name>.json`` record the gate compares.  They coincide except
#: for ``forwarding``, whose records live in ``BENCH_perf_forwarding.json``.
Selector = Callable[[dict, dict], Tuple[str, bool]]
GATES: Tuple[Tuple[str, str, Selector], ...] = (
    ("perf_scanner", "perf_scanner", lambda b, f: ("wall_pps", True)),
    ("perf_flowcache", "perf_flowcache",
     lambda b, f: ("cached_wall_pps", True)),
    ("perf_parallel", "perf_parallel", parallel_metric),
    ("faults_overhead", "faults_overhead",
     lambda b, f: ("disabled_pps", True)),
    ("store_ingest", "store_ingest",
     lambda b, f: ("ingest_rows_per_sec", True)),
    ("store_query", "store_query",
     lambda b, f: ("query_rows_per_sec", True)),
    ("bgp", "bgp", lambda b, f: ("full_solve_prefixes_per_sec", True)),
    ("timeseries_overhead", "timeseries_overhead",
     lambda b, f: ("sampled_pps", True)),
    ("supervisor_overhead", "supervisor_overhead",
     lambda b, f: ("disabled_pps", True)),
    ("forwarding", "perf_forwarding", lambda b, f: ("columnar_pps", True)),
    ("service", "service", lambda b, f: ("accepted_per_sec", True)),
)


class UnknownGateError(ValueError):
    """``--gates`` named a gate that isn't in the registry."""


def resolve_gates(names: Optional[List[str]]
                  ) -> List[Tuple[str, str, Selector]]:
    """The registry rows for ``names`` (all of them when None)."""
    if names is None:
        return list(GATES)
    by_name = {gate: row for row in GATES for gate in (row[0],)}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise UnknownGateError(
            f"unknown gate(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(row[0] for row in GATES)}"
        )
    return [by_name[name] for name in names]


def run_gate(
    results_dir: pathlib.Path = RESULTS_DIR,
    ref: str = "HEAD",
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_loader: Optional[Callable[[str], Optional[dict]]] = None,
    gates: Optional[List[str]] = None,
) -> List[Verdict]:
    """Evaluate the selected gates (all when ``gates`` is None).

    Raises :class:`UnknownGateError` on a bad gate name.  An explicitly
    selected gate whose bench produced no fresh record is a failure (the
    CI job asked for a comparison that never happened); in all-gates mode
    a missing fresh record means the bench didn't run in this job and
    skips.  A fresh record whose committed baseline is absent always
    fails: the bench is gated, so its baseline must be committed.
    """
    loader = baseline_loader or (lambda name: load_baseline(name, ref=ref))
    explicit = gates is not None
    verdicts: List[Verdict] = []
    for gate_name, bench, select in resolve_gates(gates):
        fresh = load_fresh(bench, results_dir)
        baseline = loader(bench)
        if fresh is None:
            if explicit:
                verdicts.append(Verdict(
                    bench, "-", None, None,
                    failure=(f"{gate_name}: selected via --gates but no "
                             f"fresh BENCH_{bench}.json was produced — did "
                             "the bench run?"),
                ))
            else:
                verdicts.append(Verdict(bench, "-", None, None, None,
                                        note="skipped: no fresh record"))
            continue
        if baseline is None:
            verdicts.append(Verdict(
                bench, "-", None, None,
                failure=(f"{gate_name}: fresh record present but no "
                         f"committed BENCH_{bench}.json baseline at "
                         f"{ref!r} — run the bench locally and commit "
                         "the baseline"),
            ))
            continue
        metric, higher = select(baseline, fresh)
        verdicts.append(
            check_metric(bench, metric, higher, baseline, fresh, tolerance)
        )
    return verdicts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when a perf bench regressed vs the committed "
                    "baseline."
    )
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=RESULTS_DIR,
                        help="directory holding the fresh BENCH_*.json files")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref providing the committed baselines")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--gates", default=None, metavar="NAME[,NAME...]",
                        help="comma-separated gate names to enforce "
                             "(default: every registered gate; with an "
                             "explicit selection, a missing fresh record "
                             "is a failure, not a skip)")
    args = parser.parse_args(argv)

    selected = None
    if args.gates is not None:
        selected = [name.strip() for name in args.gates.split(",")
                    if name.strip()]
    try:
        verdicts = run_gate(args.results_dir, args.ref, args.tolerance,
                            gates=selected)
    except UnknownGateError as exc:
        print(f"ERROR {exc}", file=sys.stderr)
        return 2
    failures = [v for v in verdicts if v.failure]
    for verdict in verdicts:
        if verdict.failure:
            print(f"FAIL  {verdict.failure}")
        elif verdict.note:
            print(f"SKIP  {verdict.bench}: {verdict.note}")
        else:
            assert verdict.baseline is not None and verdict.fresh is not None
            print(
                f"OK    {verdict.bench}: {verdict.metric} "
                f"baseline {verdict.baseline:,.2f} -> fresh "
                f"{verdict.fresh:,.2f}"
            )
    if failures:
        print(f"\n{len(failures)} perf regression(s); see above. "
              "If intentional, re-run the benches and commit the new "
              "BENCH_*.json baselines.")
        return 1
    print("\nperf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
