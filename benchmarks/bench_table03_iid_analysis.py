"""Table III — IID analysis of all discovered peripheries.

Merges the fifteen censuses and classifies every last hop with the
addr6-equivalent classifier; the mix must match the paper's totals
(Randomized ~75%, Byte-pattern ~10%, EUI-64 ~8%, Embed-IPv4 ~6%, Low-byte
~1%).
"""

import pytest

from repro.analysis.tables import PAPER_TABLE3, table3_iid
from repro.discovery.iid import IidClass, iid_breakdown

from benchmarks.conftest import write_result


def test_table3_iid_analysis(benchmark, censuses):
    addrs = [
        record.last_hop
        for census in censuses.values()
        for record in census.records
    ]

    counts = benchmark(lambda: iid_breakdown(addrs))

    table = table3_iid(addrs)
    write_result("table03_iid_analysis", table)

    total = sum(counts.values())
    assert total == len(addrs)
    measured = {cls: 100 * counts[cls] / total for cls in IidClass}
    for cls, paper_pct in PAPER_TABLE3.items():
        assert measured[cls] == pytest.approx(paper_pct, abs=6), cls
    # Ranking invariant: randomized dominates, low-byte is rarest.
    ordered = sorted(measured, key=measured.get, reverse=True)
    assert ordered[0] is IidClass.RANDOMIZED
    assert measured[IidClass.LOW_BYTE] < 4
