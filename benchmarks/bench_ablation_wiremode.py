"""Ablation — object-passing fast path vs full wire-format round-tripping.

The simulator normally hands packet objects to the engine; ``wire_mode``
encodes and decodes every probe and reply through the byte-level codecs
(IPv6 header + pseudo-header checksums).  The results must be identical —
wire_mode exists to prove that — and this bench quantifies what the byte
layer costs, which is the honest measure of how much of the pure-Python
slowdown is packet serialisation versus simulation logic.
"""

from repro.analysis.report import ComparisonTable
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.net.testbed import build_mini

from benchmarks.conftest import write_result

#: Every /64 of the customer aggregate: 256 probes, mixing populated
#: delegations (the correct CPE's /60) with empty space.
SPEC = "2001:db8:1::/56-64"
N_PROBES = 256


def _run(topo, wire_mode):
    probe = IcmpEchoProbe(Validator(bytes(range(16))), hop_limit=255)
    config = ScanConfig(
        scan_range=ScanRange.parse(SPEC), seed=5, wire_mode=wire_mode
    )
    return Scanner(topo.network, topo.vantage, probe, config).run()


def test_ablation_wiremode_fast_path(benchmark):
    topo = build_mini()
    result = benchmark(lambda: _run(topo, wire_mode=False))
    assert result.stats.sent == N_PROBES


def test_ablation_wiremode_wire_path(benchmark):
    topo = build_mini()
    result = benchmark(lambda: _run(topo, wire_mode=True))
    assert result.stats.sent == N_PROBES


def test_ablation_wiremode_equivalence(benchmark):
    import time

    topo_fast = build_mini()
    topo_wire = build_mini()

    def timed(topo, wire_mode):
        best, result = float("inf"), None
        for _ in range(3):  # best-of-3 to shrug off scheduler noise
            t0 = time.perf_counter()
            result = _run(topo, wire_mode)
            best = min(best, time.perf_counter() - t0)
        return result, best

    fast, fast_time = timed(topo_fast, wire_mode=False)
    wired, wire_time = timed(topo_wire, wire_mode=True)

    benchmark(lambda: _run(build_mini(), wire_mode=False))

    table = ComparisonTable(
        "Ablation — packet fast path vs wire-format round-tripping",
        ("Mode", "probes", "validated", "seconds", "probes/s"),
    )
    for label, result, seconds in (
        ("object fast path", fast, fast_time),
        ("wire round-trip", wired, wire_time),
    ):
        table.add(label, result.stats.sent, result.stats.validated,
                  f"{seconds:.3f}", f"{result.stats.sent / seconds:,.0f}")
    table.note("identical results by construction; the delta is pure "
               "serialisation cost (headers + checksums per packet)")
    write_result("ablation_wiremode", table)

    # Same discoveries either way.
    assert {r.responder for r in fast.results} == {
        r.responder for r in wired.results
    }
    assert fast.stats.validated == wired.stats.validated
    # The wire path costs measurably more.
    assert wire_time > fast_time
