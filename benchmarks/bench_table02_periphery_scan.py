"""Table II — results of periphery scanning for one sample block per ISP.

The headline experiment: XMap sweeps each block's sub-prefix window once and
the census must reproduce the paper's per-ISP shape — who answers from the
probed /64 ("same", mobile + Jio) vs from a WAN address elsewhere ("diff",
US/CN broadband), EUI-64 shares, /64 uniqueness, and MAC uniqueness.
"""

import pytest

from repro.analysis.tables import table2_periphery
from repro.discovery.periphery import discover

from benchmarks.conftest import SCALE, SEED, write_result


def test_table2_periphery_scan(benchmark, deployment, censuses):
    # Time one representative block's full scan (the others already ran in
    # the shared fixture).
    isp = deployment.isps["in-jio-broadband"]

    def scan_once():
        return discover(
            deployment.network, deployment.vantage, isp.scan_spec, seed=SEED + 1
        )

    benchmark.pedantic(scan_once, iterations=1, rounds=1)

    table = table2_periphery(censuses, SCALE)
    write_result("table02_periphery_scan", table)

    for key, census in censuses.items():
        profile = deployment.isps[key].profile
        # Every populated device must be discovered (the technique's claim:
        # one probe per sub-prefix exposes the periphery).
        assert census.n_unique >= 0.97 * deployment.isps[key].n_devices, key
        # same/diff split: exact for /64-window blocks, diff-dominant for
        # wider delegations (see DESIGN.md scale notes).
        if profile.subprefix_len == 64:
            assert census.same_pct == pytest.approx(
                profile.same_frac * 100, abs=6
            ), key
        else:
            assert census.diff_pct > 90, key
        # EUI-64 share tracks the profile.
        assert census.eui64_pct == pytest.approx(
            profile.eui64_frac * 100, abs=8
        ), key

    # Cross-ISP shape: mobile blocks are same-dominant, US broadband is
    # diff-dominant, exactly as Table II reports.
    assert censuses["in-airtel-mobile"].same_pct > 90
    assert censuses["us-comcast-broadband"].diff_pct > 95
    # Comcast's WAN concentration: few unique /64s (paper: 6.5%).
    assert censuses["us-comcast-broadband"].unique64_pct < 20
    assert censuses["cn-mobile-broadband"].unique64_pct > 95
