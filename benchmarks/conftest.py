"""Shared state for the table/figure benchmarks.

Every bench regenerates one table or figure of the paper.  The expensive
pipeline stages (building the synthetic Internet, the fifteen discovery
scans, the application-layer sweep, the loop surveys) run once per session
and are shared; each bench then times its analysis/regeneration step and
writes the paper-vs-measured table to ``benchmarks/results/<name>.txt``.

Scaling: set ``REPRO_SCALE`` (default 20000) to trade fidelity for runtime.
``REPRO_SCALE=1000`` gives device counts at exactly 1/1000 of the paper's but
takes tens of minutes for the full suite.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

import pytest

from repro.discovery.periphery import discover
from repro.discovery.vendor_id import VendorIdentifier
from repro.isp.builder import build_deployment
from repro.loop.bgp import build_global_internet
from repro.loop.detector import find_loops
from repro.services.zgrab import AppScanner

SCALE = float(os.environ.get("REPRO_SCALE", "20000"))
AS_SCALE = 10.0  # the BGP survey scales AS counts by 10, devices by SCALE
SEED = int(os.environ.get("REPRO_SEED", "7"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, *tables) -> None:
    """Persist rendered tables; also echo them for -s runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n\n".join(t if isinstance(t, str) else t.render() for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def write_bench_json(name: str, **payload) -> pathlib.Path:
    """Persist one bench's measurements machine-readably.

    The rendered ``.txt`` tables are for humans; CI trend tracking wants
    numbers.  Every bench writes a ``BENCH_<name>.json`` next to its table
    with the run parameters (scale, seed, interpreter) and its headline
    measurements, so artifact diffs across commits are one ``jq`` away.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "bench": name,
        "scale": SCALE,
        "seed": SEED,
        "python": platform.python_version(),
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True, default=str) + "\n"
    )
    return path


@pytest.fixture(scope="session")
def deployment():
    return build_deployment(scale=SCALE, seed=SEED, min_devices=40)


@pytest.fixture(scope="session")
def censuses(deployment):
    """One discovery scan per sample block (the Table II experiment)."""
    out = {}
    for key, isp in deployment.isps.items():
        out[key] = discover(
            deployment.network, deployment.vantage, isp.scan_spec, seed=SEED
        )
    return out


@pytest.fixture(scope="session")
def app_results(deployment, censuses):
    """The §V application-layer sweep over every discovered periphery."""
    scanner = AppScanner(deployment.network, deployment.vantage)
    return {
        key: scanner.scan(census.last_hop_addresses())
        for key, census in censuses.items()
    }


@pytest.fixture(scope="session")
def identified(deployment, censuses, app_results):
    vid = VendorIdentifier(deployment.catalog)
    out = {}
    for key, census in censuses.items():
        out[key] = vid.identify(census.records, app_results[key].observations)
    return out


@pytest.fixture(scope="session")
def loop_surveys(deployment):
    """The §VI loop scans of the fifteen sample blocks (Table XI)."""
    out = {}
    for key, isp in deployment.isps.items():
        out[key] = find_loops(
            deployment.network, deployment.vantage, isp.scan_spec, seed=SEED
        )
    return out


@pytest.fixture(scope="session")
def world():
    """The BGP-advertised-prefix population (Table IX / Figure 5)."""
    return build_global_internet(seed=SEED, scale=SCALE / 10, n_tail_ases=220)


@pytest.fixture(scope="session")
def world_loops(world):
    surveys = {}
    for as_truth in world.ases:
        surveys[as_truth.asn] = find_loops(
            world.network, world.vantage, as_truth.scan_spec, seed=SEED
        )
    return surveys
