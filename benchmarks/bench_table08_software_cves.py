"""Table VIII — top software version families, device counts, and CVEs.

Joins every banner harvested by the application sweep against the CVE
database.  Shape checks: dnsmasq 2.4x is the dominant vulnerable DNS family
(the paper's 142k Youhua devices), Jetty dominates HTTP, dropbear 0.4x
dominates SSH with openssh 3.5 present, GNU Inetutils 1.4.1 dominates FTP,
and the per-software CVE totals equal the paper's (16/24/10+74/1+2).
"""

from repro.analysis.tables import table8_software
from repro.services.cve import DEFAULT_CVE_DB, family_of

from benchmarks.conftest import SCALE, write_result


def _family_counts(app_results):
    merged = {}
    for result in app_results.values():
        for obs in result.observations:
            if not obs.alive or obs.software is None:
                continue
            family = family_of(obs.software.name, obs.software.version)
            key = (obs.service, obs.software.name, family)
            merged[key] = merged.get(key, 0) + 1
    return merged


def test_table8_software_cves(benchmark, app_results):
    merged = benchmark(lambda: _family_counts(app_results))

    table = table8_software(app_results.values(), SCALE)
    write_result("table08_software_cves", table)

    def count(service, name, family):
        return merged.get((service, name, family), 0)

    # DNS: dnsmasq everywhere; 2.4x (Youhua's 8-year-old build) is a large
    # contributor and maps to CVEs.
    dns_families = {
        fam: n for (svc, name, fam), n in merged.items()
        if svc == "DNS/53" and name == "dnsmasq"
    }
    assert dns_families, "no dnsmasq observed"
    assert count("DNS/53", "dnsmasq", "2.4x") > 0
    assert DEFAULT_CVE_DB.cve_count_for_software("dnsmasq") == 16

    # HTTP: Jetty dominates HTTP/8080 (the paper's 3.5M row).
    jetty = count("HTTP/8080", "Jetty", "6.1x")
    goahead = count("HTTP/8080", "GoAhead Embedded", "2.5x")
    assert jetty > goahead

    # SSH: dropbear outnumbers openssh; the 0.4x family exists.
    dropbear = sum(
        n for (svc, name, _f), n in merged.items()
        if svc == "SSH/22" and name == "dropbear"
    )
    openssh = sum(
        n for (svc, name, _f), n in merged.items()
        if svc == "SSH/22" and name == "openssh"
    )
    assert dropbear > openssh
    assert DEFAULT_CVE_DB.cve_count_for_software("openssh") == 74
    assert DEFAULT_CVE_DB.cve_count_for_software("dropbear") == 10

    # FTP: GNU Inetutils 1.4.1 is the dominant server (paper: 139.3k).
    inetutils = count("FTP/21", "GNU Inetutils", "1.4x")
    ftp_total = sum(n for (svc, _n, _f), n in merged.items() if svc == "FTP/21")
    assert ftp_total and inetutils / ftp_total > 0.5

    # Version lag: the dominant DNS family is 8 years old at scan time.
    info = DEFAULT_CVE_DB.info("dnsmasq", "2.4x")
    assert info.lag_years(2020) >= 8
