"""Telemetry fast-path cost: default collection with ``--trace off``.

The telemetry contract is that observability is effectively free until you
turn the expensive parts on: tracing off means one ``is not None`` check
per forwarding hop, and metrics collection is a handful of hoisted counter
increments plus two histogram observations per probe.  This bench runs the
same 2000-probe scan with telemetry fully disabled and with the default
configuration (metrics on, trace off) and asserts the difference stays
under the <5% budget.

Shared CI runners are noisy at this granularity, so the measurement is
deliberately defensive: rounds are paired in ABBA order (whichever config
runs first in a pair enjoys a systematic scheduler advantage, alternating
cancels it) and the reported overhead is the smaller of two robust
estimators — the ratio of per-config minima, and the median of per-pair
ratios.  Either alone is an unbiased estimate of the true cost; taking the
min guards the assertion against a single noisy round without hiding a
real regression, which would move both.

``REPRO_OVERHEAD_TOLERANCE`` (default 0.05 — the <5% budget) sets the
failure threshold.
"""

import os
import statistics
import time

from repro.analysis.report import ComparisonTable
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator

from benchmarks.conftest import SEED, write_bench_json, write_result

ROUNDS = 12
PROBES = 2000
TOLERANCE = float(os.environ.get("REPRO_OVERHEAD_TOLERANCE", "0.05"))


def test_telemetry_trace_off_overhead(deployment):
    isp = deployment.isps["in-airtel-mobile"]
    probe = IcmpEchoProbe(Validator(bytes(range(16))))

    def one_round(collect_metrics: bool) -> float:
        config = ScanConfig(
            scan_range=ScanRange.parse(isp.scan_spec),
            seed=SEED,
            max_probes=PROBES,
            collect_metrics=collect_metrics,
            trace="off",
        )
        scanner = Scanner(deployment.network, deployment.vantage, probe,
                          config)
        started = time.perf_counter()
        scanner.run()
        return time.perf_counter() - started

    one_round(False), one_round(True)  # warm both paths before timing
    bare = telemetry = float("inf")
    pair_ratios = []
    for i in range(ROUNDS):
        if i % 2 == 0:  # ABBA: alternate which config goes first
            b = one_round(False)
            t = one_round(True)
        else:
            t = one_round(True)
            b = one_round(False)
        bare = min(bare, b)
        telemetry = min(telemetry, t)
        pair_ratios.append(t / b)
    overhead = min(
        telemetry / bare - 1.0,
        statistics.median(pair_ratios) - 1.0,
    )

    table = ComparisonTable(
        "Telemetry overhead with tracing off (min of "
        f"{ROUNDS} interleaved rounds, {PROBES} probes each)",
        ("Configuration", "best wall", "probes/s"),
    )
    table.add("telemetry disabled", f"{bare * 1000:.1f} ms",
              f"{PROBES / bare:,.0f}")
    table.add("metrics on, --trace off", f"{telemetry * 1000:.1f} ms",
              f"{PROBES / telemetry:,.0f}")
    table.note(
        f"overhead {overhead:+.2%} (budget {TOLERANCE:.0%})"
    )
    write_result("telemetry_overhead", table)
    write_bench_json(
        "telemetry_overhead",
        rounds=ROUNDS,
        probes=PROBES,
        bare_wall_seconds=bare,
        telemetry_wall_seconds=telemetry,
        overhead=overhead,
        tolerance=TOLERANCE,
    )

    assert overhead < TOLERANCE, (
        f"telemetry with tracing off cost {overhead:.2%} "
        f"(budget {TOLERANCE:.0%})"
    )
