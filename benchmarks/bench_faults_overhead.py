"""Fault-layer fast-path cost: chaos machinery armed but idle.

The resilience contract mirrors the telemetry one: when no fault window is
active the chaos engine must be effectively free.  An armed
:class:`~repro.faults.FaultInjector` costs one float comparison per
injected probe (``clock >= next_transition``), and the adaptive-rate
controller adds a per-window bookkeeping pass; neither may tax the §IV-E
probing budget.  This bench runs the same 2000-probe scan twice — fault
layer fully disabled, and armed with a far-future schedule plus the
adaptive controller enabled — and asserts the difference stays under the
<2% budget.

The measurement is the same defensive ABBA-paired scheme as
``bench_telemetry_overhead``: rounds alternate which configuration goes
first, and the reported overhead is the smaller of the per-config-minima
ratio and the median per-pair ratio, so one noisy CI round can't fail the
gate while a real regression (which moves both estimators) still does.

``REPRO_FAULTS_TOLERANCE`` (default 0.02 — the <2% budget) sets the
failure threshold.
"""

import os
import statistics
import time

from repro.analysis.report import ComparisonTable
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.core.validate import Validator
from repro.faults import LOSS_BURST, FaultEvent, FaultSchedule

from benchmarks.conftest import SEED, write_bench_json, write_result

ROUNDS = 12
PROBES = 2000
TOLERANCE = float(os.environ.get("REPRO_FAULTS_TOLERANCE", "0.02"))

#: Armed but never active: the scan finishes aeons (of virtual time) before
#: the window opens, so every probe pays exactly the idle-path cost.
IDLE_SCHEDULE = FaultSchedule(seed=SEED, events=(
    FaultEvent(kind=LOSS_BURST, start=1e6, end=1e6 + 1.0, rate=0.5),
))


def test_fault_layer_idle_overhead(deployment):
    isp = deployment.isps["in-airtel-mobile"]
    probe = IcmpEchoProbe(Validator(bytes(range(16))))

    def one_round(armed: bool) -> float:
        config = ScanConfig(
            scan_range=ScanRange.parse(isp.scan_spec),
            seed=SEED,
            max_probes=PROBES,
            fault_schedule=IDLE_SCHEDULE if armed else None,
            adaptive_rate=armed,
        )
        scanner = Scanner(deployment.network, deployment.vantage, probe,
                          config)
        started = time.perf_counter()
        scanner.run()
        return time.perf_counter() - started

    one_round(False), one_round(True)  # warm both paths before timing
    disabled = armed = float("inf")
    pair_ratios = []
    for i in range(ROUNDS):
        if i % 2 == 0:  # ABBA: alternate which config goes first
            d = one_round(False)
            a = one_round(True)
        else:
            a = one_round(True)
            d = one_round(False)
        disabled = min(disabled, d)
        armed = min(armed, a)
        pair_ratios.append(a / d)
    overhead = min(
        armed / disabled - 1.0,
        statistics.median(pair_ratios) - 1.0,
    )

    table = ComparisonTable(
        "Fault-layer overhead while idle (min of "
        f"{ROUNDS} interleaved rounds, {PROBES} probes each)",
        ("Configuration", "best wall", "probes/s"),
    )
    table.add("faults disabled", f"{disabled * 1000:.1f} ms",
              f"{PROBES / disabled:,.0f}")
    table.add("armed idle schedule + adaptive rate",
              f"{armed * 1000:.1f} ms", f"{PROBES / armed:,.0f}")
    table.note(
        f"overhead {overhead:+.2%} (budget {TOLERANCE:.0%})"
    )
    write_result("faults_overhead", table)
    write_bench_json(
        "faults_overhead",
        rounds=ROUNDS,
        probes=PROBES,
        disabled_wall_seconds=disabled,
        armed_wall_seconds=armed,
        disabled_pps=PROBES / disabled,
        armed_pps=PROBES / armed,
        overhead=overhead,
        tolerance=TOLERANCE,
    )

    assert overhead < TOLERANCE, (
        f"idle fault layer cost {overhead:.2%} (budget {TOLERANCE:.0%})"
    )
