"""Figure 2 — results of top 10 periphery device vendors with exposed services.

Regenerates the vendor × service matrix from identified devices and alive
observations.  Shape: China Mobile tops the ranking; the per-vendor service
patterns the paper calls out hold (China Mobile → HTTP/8080 + DNS; StarNet →
HTTP/8080 only).
"""

from repro.analysis.figures import (
    PAPER_FIG2_VENDORS,
    figure2_top_vendors,
    vendor_service_matrix,
)

from benchmarks.conftest import write_result


def test_fig02_vendor_services(benchmark, app_results, identified):
    all_identified = [d for devices in identified.values() for d in devices]
    all_observations = [
        o for result in app_results.values() for o in result.observations
    ]

    matrix = benchmark(
        lambda: vendor_service_matrix(all_identified, all_observations)
    )

    table = figure2_top_vendors(matrix)
    write_result("fig02_vendor_services", table)

    totals = {v: sum(row.values()) for v, row in matrix.items()}
    ranking = sorted(totals, key=totals.get, reverse=True)

    assert ranking[0] == "China Mobile"
    # Most of the measured top-10 belongs to the paper's Figure 2 top-10.
    overlap = len(set(ranking[:10]) & set(PAPER_FIG2_VENDORS))
    assert overlap >= 5

    # §V-B patterns:
    cm = matrix["China Mobile"]
    assert cm["HTTP/8080"] == max(cm.values())  # 8080-heavy
    if "StarNet" in matrix:
        starnet = matrix["StarNet"]
        non_8080 = sum(v for k, v in starnet.items() if k != "HTTP/8080")
        assert starnet["HTTP/8080"] >= non_8080  # "only tend to expose 8080"
    if "Youhua Tech" in matrix:
        youhua = matrix["Youhua Tech"]
        assert youhua.get("NTP/123", 0) == 0  # all services except NTP
        exposed = {k for k, v in youhua.items() if v > 0}
        # "All of the selected 7 services except NTP": at the default scale
        # only a handful of Youhua devices exist, so require breadth rather
        # than the full seven.
        assert len(exposed) >= 3
        assert "DNS/53" in exposed
