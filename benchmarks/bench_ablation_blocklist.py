"""Ablation — blocklist data structure: radix trie vs linear scan.

ZMap-family scanners consult the blocklist once per generated target; at
line rate that lookup must be sub-microsecond.  The bench compares the radix
trie against a naive linear scan over the same entries.
"""

import random

from repro.analysis.report import ComparisonTable
from repro.core.blocklist import PrefixSet
from repro.net.addr import IPv6Prefix

from benchmarks.conftest import write_result

N_PREFIXES = 512
N_PROBES = 2000


def _entries():
    rng = random.Random(11)
    prefixes = []
    for _ in range(N_PREFIXES):
        length = rng.choice([32, 40, 48, 56, 64])
        network = rng.getrandbits(128) >> (128 - length) << (128 - length)
        prefixes.append(IPv6Prefix(network, length))
    probes = [rng.getrandbits(128) for _ in range(N_PROBES)]
    return prefixes, probes


def _linear_covering(prefixes, value):
    best = None
    for prefix in prefixes:
        if prefix.contains(value):
            if best is None or prefix.length > best.length:
                best = prefix
    return best


def test_ablation_blocklist_trie(benchmark):
    prefixes, probes = _entries()
    ps = PrefixSet(prefixes)
    benchmark(lambda: [ps.covering(v) for v in probes])


def test_ablation_blocklist_linear(benchmark):
    prefixes, probes = _entries()
    benchmark.pedantic(
        lambda: [_linear_covering(prefixes, v) for v in probes],
        iterations=1, rounds=3,
    )


def test_ablation_blocklist_comparison(benchmark):
    import time

    prefixes, probes = _entries()
    ps = PrefixSet(prefixes)

    # Correctness first: both structures agree on every probe.
    for value in probes[:500]:
        trie_hit = ps.covering(value)
        naive_hit = _linear_covering(prefixes, value)
        assert (trie_hit is None) == (naive_hit is None)
        if trie_hit is not None:
            assert trie_hit.length == naive_hit.length

    t0 = time.perf_counter()
    for value in probes:
        ps.covering(value)
    trie_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for value in probes:
        _linear_covering(prefixes, value)
    linear_time = time.perf_counter() - t0

    benchmark(lambda: ps.covering(probes[0]))

    table = ComparisonTable(
        f"Ablation — blocklist lookup over {N_PREFIXES} prefixes",
        ("Structure", "total (s)", "per lookup (µs)"),
    )
    table.add("radix trie", f"{trie_time:.4f}",
              f"{1e6 * trie_time / N_PROBES:.2f}")
    table.add("linear scan", f"{linear_time:.4f}",
              f"{1e6 * linear_time / N_PROBES:.2f}")
    write_result("ablation_blocklist", table)

    assert trie_time < linear_time
