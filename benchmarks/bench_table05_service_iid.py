"""Table V — IID analysis of peripheries with alive application services.

The paper's observation: the service-alive subset skews heavily toward
EUI-64 (30.4% vs 7.6% overall) because service-exposing CPE fleets ship
SLAAC-from-MAC addressing.  The skew emerges here because the big Chinese
service-heavy blocks are exactly the EUI-heavy ones.
"""

import pytest

from repro.analysis.tables import table5_service_iid
from repro.discovery.iid import IidClass, iid_breakdown

from benchmarks.conftest import write_result


def test_table5_service_iid(benchmark, censuses, app_results):
    alive = set()
    for result in app_results.values():
        alive.update(result.alive_targets())
    alive = sorted(alive)

    counts = benchmark(lambda: iid_breakdown(a.iid for a in alive))

    table = table5_service_iid(alive)
    write_result("table05_service_iid", table)

    total = sum(counts.values())
    assert total == len(alive) > 0
    eui_pct = 100 * counts[IidClass.EUI64] / total

    # The headline skew: service-alive devices are far more EUI-64 than the
    # overall population (paper: 30.4% vs 7.6%).
    overall = iid_breakdown(
        r.last_hop for c in censuses.values() for r in c.records
    )
    overall_eui_pct = 100 * overall[IidClass.EUI64] / sum(overall.values())
    assert eui_pct > 1.5 * overall_eui_pct
    # Randomized still carries the majority, as in the paper (69%).
    random_pct = 100 * counts[IidClass.RANDOMIZED] / total
    assert random_pct == pytest.approx(69.0, abs=15)
