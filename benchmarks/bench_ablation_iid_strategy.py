"""Ablation — probe IID strategy: random vs low-byte.

The discovery technique depends on the probe address being *nonexistent*
(so the periphery must emit Destination Unreachable).  Random 64-bit IIDs
guarantee that; low-byte IIDs (::1) collide with real low-byte router
addresses and turn discoveries into echo replies — changing what the scan
measures.  This bench quantifies the difference on one block.
"""

from repro.analysis.report import ComparisonTable
from repro.core.probes.base import ReplyKind
from repro.core.probes.icmp import IcmpEchoProbe
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import IidStrategy, ScanRange
from repro.core.validate import Validator

from benchmarks.conftest import SEED, write_result


def _scan(deployment, spec, strategy):
    probe = IcmpEchoProbe(Validator(bytes(range(16))))
    config = ScanConfig(
        scan_range=ScanRange.parse(spec), seed=SEED, iid_strategy=strategy
    )
    return Scanner(deployment.network, deployment.vantage, probe, config).run()


def test_ablation_iid_strategy(benchmark, deployment):
    isp = deployment.isps["in-jio-broadband"]

    random_run = benchmark.pedantic(
        lambda: _scan(deployment, isp.scan_spec, IidStrategy.RANDOM),
        iterations=1, rounds=1,
    )
    lowbyte_run = _scan(deployment, isp.scan_spec, IidStrategy.LOW_BYTE)

    def errors(result):
        return sum(
            count for kind, count in result.by_kind().items() if kind.is_error
        )

    table = ComparisonTable(
        "Ablation — probe IID strategy (Reliance Jio block)",
        ("Strategy", "error replies (discoveries)", "echo replies",
         "unique responders"),
    )
    for name, run in (("random IID", random_run), ("low-byte ::1", lowbyte_run)):
        table.add(
            name,
            errors(run),
            run.by_kind().get(ReplyKind.ECHO_REPLY, 0),
            len(run.unique_responders()),
        )
    table.note("random IIDs make the nonexistent-destination assumption "
               "sound; low-byte probes can hit real device addresses")
    write_result("ablation_iid_strategy", table)

    assert errors(random_run) >= errors(lowbyte_run)
    # Random-IID probing still discovers essentially every periphery.
    assert errors(random_run) >= 0.97 * isp.n_devices
