"""§VI-A — the routing-loop amplification factor (>200x).

Measures actual ISP↔CPE link crossings per attacker packet in the simulator:
the unspoofed factor tracks 255−n exactly, the spoofed-source variant
doubles it, and the amplification scales linearly with the attacker's chosen
hop limit.
"""

from repro.analysis.report import ComparisonTable
from repro.loop.attack import run_loop_attack
from repro.net.packet import MAX_HOP_LIMIT

from tests.topo import MiniTopology, build_mini

from benchmarks.conftest import write_result


def test_amplification_factor(benchmark):
    topo = build_mini()
    target = MiniTopology.LAN_VULN.subprefix(9, 64).address(0xBAD)

    def attack():
        # Advance virtual time so repeated benchmark rounds don't drain the
        # CPE's ICMPv6 error token bucket (one Time Exceeded per packet).
        topo.network.advance(1.0)
        return run_loop_attack(
            topo.network, topo.vantage, target, "isp", "cpe-vuln",
            hop_limit=MAX_HOP_LIMIT,
        )

    report = benchmark(attack)

    topo.network.advance(5.0)
    spoofed = run_loop_attack(
        topo.network, topo.vantage, target, "isp", "cpe-vuln",
        spoofed_source=MiniTopology.LAN_VULN.subprefix(10, 64).address(0xF0),
    )
    sweep = []
    for hop_limit in (32, 64, 128, 255):
        topo.network.advance(5.0)
        sweep.append(
            (hop_limit,
             run_loop_attack(
                 topo.network, topo.vantage, target, "isp", "cpe-vuln",
                 hop_limit=hop_limit,
             ).amplification)
        )

    table = ComparisonTable(
        "§VI-A routing-loop amplification (n=2 hops before the ISP router)",
        ("Variant", "hop limit", "link crossings", "paper bound"),
    )
    table.add("single packet", 255, report.amplification, "255-n = 253")
    table.add("spoofed source", 255, spoofed.amplification, "2x(255-n) = 506")
    for hop_limit, crossings in sweep:
        table.add("hop-limit sweep", hop_limit, crossings, f"~{hop_limit}-n")
    write_result("amplification", table)

    assert report.amplification > 200  # the paper's headline
    assert abs(report.amplification - report.theoretical) <= 1
    assert spoofed.amplification >= 1.8 * report.amplification
    # Linear scaling in the attacker's hop limit.
    for hop_limit, crossings in sweep:
        assert abs(crossings - (hop_limit - 2)) <= 2
