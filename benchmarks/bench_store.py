"""Store performance: streaming ingest and prefix-indexed query pruning.

Two headline numbers, both gated by ``check_regression.py``:

* **Ingest** (``ingest_rows_per_sec``): synthetic rows stream through a
  :class:`~repro.store.sink.SegmentSink` into a sealed, committed segment.
  The result path must never be the scan bottleneck, so the bench asserts
  ingest throughput at least matches the scanner fast path's ``wall_pps``
  from the committed ``BENCH_perf_scanner.json`` — a store that ingests
  slower than the scanner emits would stall a campaign.

* **Query** (``query_rows_per_sec``): a /32-prefix query over a compacted
  multi-block store.  The per-segment index must prune every unrelated
  segment (asserted by counting which segments actually decode rows), so
  the query's I/O is proportional to the matching slice, not the store.

The compacted store is left at ``benchmarks/results/store_bench/`` for CI
to upload as an artifact — a ready-made corpus for query experiments.
"""

from __future__ import annotations

import shutil
import time

from repro.core.probes.base import ReplyKind
from repro.core.scanner import ProbeResult
from repro.net.addr import IPv6Addr
from repro.store import ResultStore, SegmentReader, SegmentSink, query

from benchmarks.conftest import RESULTS_DIR, write_bench_json, write_result

INGEST_ROWS = 200_000
PREFIXES = 8  # distinct /32 blocks in the query corpus
ROWS_PER_PREFIX = 25_000
ROUNDS = 3


def _block_rows(count: int, block: int) -> list:
    """Synthetic rows whose targets all fall under the ``block``-th /32."""
    base = (0x2001_0DB8 + block) << 96
    return [
        ProbeResult(
            target=IPv6Addr(base + (i << 64) + 0xBAD),
            responder=IPv6Addr(base + (i << 64) + 1),
            kind=ReplyKind.DEST_UNREACHABLE,
            icmp_type=1,
            icmp_code=3,
        )
        for i in range(count)
    ]


def test_perf_store_ingest(tmp_path):
    rows = _block_rows(INGEST_ROWS, 0)
    best = float("inf")
    store = None
    for attempt in range(ROUNDS):
        store = ResultStore(tmp_path / f"store-{attempt}")
        started = time.perf_counter()
        sink = SegmentSink(store.writer("bulk"))
        sink.emit_many(rows)
        sink.close()
        store.commit([sink.meta], snapshot="bench")
        best = min(best, time.perf_counter() - started)
    assert store is not None and store.total_rows == INGEST_ROWS

    ingest_rows_per_sec = INGEST_ROWS / best
    segment_bytes = int(store.info()["bytes"])

    lines = [
        f"store ingest: {INGEST_ROWS:,} rows in {best:.3f}s "
        f"({ingest_rows_per_sec:,.0f} rows/s, best of {ROUNDS}), "
        f"{segment_bytes / INGEST_ROWS:.1f} B/row on disk",
    ]

    # The store must keep up with the scanner: compare against the fast
    # path's committed throughput (skip silently if the scanner bench
    # hasn't produced a record on this checkout).
    scanner_record = RESULTS_DIR / "BENCH_perf_scanner.json"
    if scanner_record.exists():
        import json

        wall_pps = float(json.loads(scanner_record.read_text())["wall_pps"])
        lines.append(
            f"scanner fast path emits {wall_pps:,.0f} rows/s — "
            f"ingest headroom {ingest_rows_per_sec / wall_pps:.1f}x"
        )
        assert ingest_rows_per_sec >= wall_pps, (
            f"store ingest ({ingest_rows_per_sec:,.0f} rows/s) slower than "
            f"the scanner fast path ({wall_pps:,.0f} pps): the result path "
            f"would stall campaigns"
        )

    write_result("store_ingest", "\n".join(lines))
    write_bench_json(
        "store_ingest",
        rows=INGEST_ROWS,
        ingest_seconds=best,
        ingest_rows_per_sec=ingest_rows_per_sec,
        bytes_per_row=segment_bytes / INGEST_ROWS,
    )


def test_perf_store_query():
    corpus = RESULTS_DIR / "store_bench"
    shutil.rmtree(corpus, ignore_errors=True)
    store = ResultStore(corpus)
    for block in range(PREFIXES):
        rows = _block_rows(ROWS_PER_PREFIX, block)
        metas = []
        for half, chunk in enumerate((rows[: len(rows) // 2],
                                      rows[len(rows) // 2:])):
            writer = store.writer(f"block{block}-{half}")
            writer.append_many(chunk)
            metas.append(writer.seal())
        store.commit(metas, snapshot=f"round-{block}")
    report = store.compact()
    assert report["segments_after"] == PREFIXES  # 2 per block merged to 1

    store = ResultStore(corpus)
    total_segments = len(store.segments)
    scanned: list = []
    original = SegmentReader.iter_rows

    def tracking(self, blocks=None):
        scanned.append(self.path.name)
        return original(self, blocks)

    prefix = "2001:db8::/32"  # block 0's /32
    SegmentReader.iter_rows = tracking
    try:
        started = time.perf_counter()
        matched = sum(1 for _ in query(store, prefix=prefix))
        elapsed = time.perf_counter() - started
    finally:
        SegmentReader.iter_rows = original

    assert matched == ROWS_PER_PREFIX
    # The index must prove every other block's segment irrelevant.
    assert len(set(scanned)) < total_segments
    assert len(set(scanned)) == 1

    started = time.perf_counter()
    everything = sum(1 for _ in store.iter_rows())
    full_elapsed = time.perf_counter() - started
    assert everything == PREFIXES * ROWS_PER_PREFIX

    query_rows_per_sec = matched / elapsed
    write_result(
        "store_query",
        f"prefix query {prefix}: {matched:,} rows in {elapsed:.3f}s "
        f"({query_rows_per_sec:,.0f} rows/s) touching "
        f"{len(set(scanned))}/{total_segments} segment(s); "
        f"full scan of {everything:,} rows took {full_elapsed:.3f}s",
    )
    write_bench_json(
        "store_query",
        rows_matched=matched,
        rows_total=everything,
        segments_total=total_segments,
        segments_scanned=len(set(scanned)),
        query_seconds=elapsed,
        query_rows_per_sec=query_rows_per_sec,
        full_scan_seconds=full_elapsed,
    )
