"""Columnar forwarding engine throughput vs the scalar batched oracle.

The workload is deliberately forwarding-bound, not generation-bound: 16
looping /64s behind the vulnerable CPE, 64 probe copies per target at hop
limit 255, so nearly every probe bounces isp <-> cpe-vuln until its hop
limit dies (the paper's §VI amplification loop).  The scalar engine pays
one python ``_forward`` per probe per hop; the columnar engine advances
the whole block with masked vector ops and the 2-cycle fast-forward, then
replays only the stateful tail through the scalar code.

Both paths must produce the identical scan — digest, ordered rows, and
stats — and the columnar path must clear the tentpole's >=10x bar.  The
committed ``BENCH_perf_forwarding.json`` baseline feeds the ``forwarding``
gate in ``check_regression.py``.
"""

from repro.analysis.report import ComparisonTable
from repro.core.scanner import ScanConfig, Scanner
from repro.core.target import ScanRange
from repro.engine.planner import ProbeSpec
from repro.net.testbed import build_mini

from benchmarks.conftest import SEED, write_bench_json, write_result

LOOP_SPEC = "2001:db8:1:60::/60-64"  # 16 /64s, all forwarding loops
PROBES_PER_TARGET = 64
HOP_LIMIT = 255
SPEEDUP_FLOOR = 10.0


def _run_scan(columnar: bool):
    """One full scan on a fresh mini topology (fresh virtual clock)."""
    topo = build_mini(seed=SEED)
    config = ScanConfig(
        scan_range=ScanRange.parse(LOOP_SPEC),
        seed=SEED,
        probes_per_target=PROBES_PER_TARGET,
        batched=True,
        batch_size=1024,
        columnar=columnar,
    )
    probe = ProbeSpec.for_seed(SEED, hop_limit=HOP_LIMIT).build()
    return Scanner(topo.network, topo.vantage, probe, config).run_batched()


def _observables(result):
    stats = result.stats.to_dict()
    stats.pop("wall_seconds")
    return (result.dedup_digest(), [r.to_dict() for r in result.results],
            stats)


def test_perf_forwarding_throughput(benchmark):
    # Headline: the columnar engine.  pedantic rounds warm the lazy numpy
    # import and the per-topology FIB compile out of the reported run.
    columnar = benchmark.pedantic(
        _run_scan, args=(True,), iterations=1, rounds=3
    )
    # Oracle A/B: the scalar batched loop on the identical workload.
    scalar = _run_scan(False)

    # Same scan, bit for bit.
    assert _observables(columnar) == _observables(scalar)

    columnar_pps = columnar.stats.wall_pps
    scalar_pps = scalar.stats.wall_pps
    speedup = columnar_pps / scalar_pps

    table = ComparisonTable(
        "Columnar forwarding engine vs scalar batched oracle",
        ("Engine", "probes", "wall pps"),
    )
    table.add("scalar batched (oracle)", scalar.stats.sent,
              f"{scalar_pps:,.0f}")
    table.add("columnar (vector + replay)", columnar.stats.sent,
              f"{columnar_pps:,.0f}")
    table.note(
        f"speedup {speedup:.1f}x on the looping /60 workload "
        f"({PROBES_PER_TARGET} copies/target, hop limit {HOP_LIMIT}); "
        f"identical digest, rows, and stats on both engines"
    )
    write_result("forwarding", table)
    write_bench_json(
        "perf_forwarding",
        sent=columnar.stats.sent,
        columnar_pps=columnar_pps,
        scalar_pps=scalar_pps,
        speedup=speedup,
        probes_per_target=PROBES_PER_TARGET,
        hop_limit=HOP_LIMIT,
    )

    # The tentpole bar: >=10x forwarded-probe throughput.
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.0f}x bar"
    )
