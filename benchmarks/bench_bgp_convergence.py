"""BGP fabric convergence: full world solve vs incremental reconvergence.

The periphery experiments rebuild their substrate constantly — every
campaign shard recompiles the world from its ``TopologySpec``, and every
control-plane scenario (leak, hijack, flap, failover) reconverges part of
it mid-scan.  This bench sizes both paths on a ~2k-AS Internet: the
headline is the full path-vector solve + FIB install measured in origin
prefixes per second (via pytest-benchmark), and the A/B timer measures
incremental reconvergence — :func:`repro.bgp.compute_delta` re-solving
only the dirty prefixes of one scenario — which must beat the full solve
by a wide margin or mid-scan scenario injection becomes the bottleneck.
"""

import time

from repro.analysis.report import ComparisonTable
from repro.bgp import AsRole, Failover, PrefixHijack, RouteLeak, compute_delta
from repro.bgp.world import build_internet

from benchmarks.conftest import SEED, write_bench_json, write_result

N_TAIL_ASES = 2_000  # ~2k-AS world; the bench's own axis, not REPRO_SCALE
MULTIHOME_RATE = 0.25


def _build():
    return build_internet(
        seed=SEED,
        n_tail_ases=N_TAIL_ASES,
        multihome_rate=MULTIHOME_RATE,
        populate=False,  # control-plane cost only; no CPE population
    )


def _scenarios(fabric):
    """One of each reconvergence shape, drawn from the fabric itself.

    The world is built unpopulated, so actors come straight off the
    declared AS set rather than the (empty) ``world.edges`` list.
    """
    edges = [a for a in fabric.ases.values() if a.role == AsRole.EDGE]
    providers = {
        a.asn: [s.a for s in fabric.provider_sessions(a.asn)] for a in edges
    }
    multi = next(a for a in edges if len(providers[a.asn]) >= 2)
    # A victim single-homed under one of the leaker's providers, so the
    # leaker's best route for the victim block is guaranteed to run
    # through ``from_as`` (shortest path: straight down the shared cone).
    victim = next(
        a for a in edges
        if len(providers[a.asn]) == 1
        and providers[a.asn][0] in providers[multi.asn]
    )
    from_as = providers[victim.asn][0]
    to_as = next(p for p in providers[multi.asn] if p != from_as)
    single = next(a for a in edges if len(providers[a.asn]) == 1)
    return (
        Failover(multi.asn),
        RouteLeak(
            leaker=multi.asn,
            from_as=from_as,
            to_as=to_as,
            prefixes=(str(victim.block),),
        ),
        PrefixHijack(
            hijacker=multi.asn,
            prefix=str(single.block.subprefix(0, 44)),
        ),
    )


def test_bgp_convergence(benchmark):
    world = benchmark.pedantic(_build, iterations=1, rounds=3)
    full_wall = benchmark.stats.stats.mean
    fabric = world.fabric

    n_prefixes = len(fabric.announcements)
    n_ases = len(fabric.ases)
    n_sessions = len(fabric.sessions)
    rib_routes = fabric.rib_routes()
    fib_routes = fabric.fib_routes()
    full_pps = n_prefixes / full_wall if full_wall else 0.0

    # A/B: incremental reconvergence — each scenario re-solves only its
    # dirty prefix set and diffs against the compiled FIB.
    dirty_total = 0
    ops_total = 0
    started = time.perf_counter()
    for scenario in _scenarios(fabric):
        delta = compute_delta(fabric, scenario)
        dirty_total += len(delta.dirty)
        ops_total += len(delta.ops)
    reconverge_wall = time.perf_counter() - started
    reconverge_per_scenario = reconverge_wall / 3

    # Incremental must beat amortised full-solve per scenario, else
    # mid-scan injection would be cheaper done by full rebuild.
    assert reconverge_per_scenario < full_wall
    assert ops_total > 0

    table = ComparisonTable(
        f"BGP convergence ({n_ases} ASes, {n_sessions} sessions, "
        f"{n_prefixes} origin prefixes)",
        ("Path", "wall s", "prefixes", "prefixes/s"),
    )
    table.add("full solve + FIB install", f"{full_wall:.3f}", n_prefixes,
              f"{full_pps:,.0f}")
    table.add("incremental (3 scenarios)", f"{reconverge_wall:.3f}",
              dirty_total,
              f"{dirty_total / reconverge_wall:,.0f}"
              if reconverge_wall else "-")
    table.note(
        f"{rib_routes} RIB routes -> {fib_routes} installed FIB rows; "
        f"reconvergence {full_wall / reconverge_per_scenario:.0f}x faster "
        f"than a rebuild per scenario ({ops_total} table ops emitted)"
    )
    write_result("bgp_convergence", table)
    write_bench_json(
        "bgp",
        n_ases=n_ases,
        n_sessions=n_sessions,
        n_prefixes=n_prefixes,
        rib_routes=rib_routes,
        fib_routes=fib_routes,
        full_solve_seconds=full_wall,
        full_solve_prefixes_per_sec=full_pps,
        reconverge_seconds_per_scenario=reconverge_per_scenario,
        reconverge_dirty_prefixes=dirty_total,
        reconverge_table_ops=ops_total,
        reconverge_speedup=(
            full_wall / reconverge_per_scenario
            if reconverge_per_scenario else 0.0
        ),
    )
