"""Ablation — loop-probe hop limit (§VI-B's accuracy/impact trade-off).

"A large Hop Limit will potentially result in many routing loop packets …
a small Hop Limit will cause the missing of vulnerable devices": the bench
sweeps h and measures both detection recall and the forwarding cost each
probe inflicts on the looping links, reproducing why the paper settled on
h=32 (h=33 here: the simulator's fixed 2-hop vantage parity).
"""

from repro.analysis.report import ComparisonTable
from repro.loop.detector import find_loops

from benchmarks.conftest import SEED, write_result


def test_ablation_hoplimit(benchmark, deployment):
    isp = deployment.isps["cn-unicom-broadband"]
    truth_loops = sum(1 for t in isp.truths if t.loop_vulnerable)
    network = deployment.network

    rows = []
    for hop_limit in (5, 17, 33, 65, 129, 253):
        hops_before = network.total_hops
        survey = find_loops(
            network, deployment.vantage, isp.scan_spec,
            hop_limit=hop_limit, seed=SEED,
        )
        cost = network.total_hops - hops_before
        rows.append((hop_limit, survey.n_unique, cost, survey.stats.sent))

    benchmark.pedantic(
        lambda: find_loops(network, deployment.vantage, isp.scan_spec,
                           hop_limit=33, seed=SEED),
        iterations=1, rounds=1,
    )

    table = ComparisonTable(
        "Ablation — loop-probe hop limit (China Unicom broadband block)",
        ("hop limit", "loops found", f"truth ({truth_loops})",
         "forwarding hops burned", "probes"),
    )
    for hop_limit, found, cost, sent in rows:
        table.add(hop_limit, found, truth_loops, cost, sent)
    table.note("small h misses nothing here only because the simulated "
               "vantage is 2 hops out; cost grows linearly with h — the "
               "paper's reason for picking h=32 over h=255")
    write_result("ablation_hoplimit", table)

    by_h = {h: (found, cost) for h, found, cost, _s in rows}
    # Very small h cannot traverse even one loop round-trip at detection
    # confirmation (h+2 still reports, so h=5 works; h below the vantage
    # distance would find nothing — covered by unit tests).  Recall is flat
    # in h here, while cost grows roughly linearly:
    assert by_h[253][1] > 5 * by_h[17][1]
    assert by_h[33][0] >= 0.8 * truth_loops
