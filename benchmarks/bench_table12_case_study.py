"""Table XII — routing loop router bench testing (99 units).

Re-runs the §VI-D testbench: each router model gets a /64 WAN + /60 LAN and
two crafted hop-limit-255 packets.  Checks the paper's findings: all 99
units loop on at least one prefix, the showcased verdict matrix matches,
immune prefixes answer Destination Unreachable, and the capped firmware
(Xiaomi/Gargoyle/librecmc/OpenWrt) forwards >10 but far fewer than
(255−n)/2 times.
"""

from repro.analysis.tables import table12_case_study
from repro.loop.casestudy import run_case_study

from benchmarks.conftest import write_result


def test_table12_case_study(benchmark):
    results = benchmark.pedantic(run_case_study, iterations=1, rounds=1)

    table = table12_case_study(results)
    write_result("table12_case_study", table)

    assert len(results) == 99
    assert all(r.vulnerable for r in results)  # "all ... are vulnerable"
    assert all(r.immune_prefix_unreachable for r in results)

    by_model = {(r.router.brand, r.router.model): r for r in results}
    showcased = {
        ("ASUS", "GT-AC5300"): (True, False),
        ("D-Link", "COVR-3902"): (True, False),
        ("Huawei", "WS5100"): (True, True),
        ("Linksys", "EA8100"): (True, True),
        ("Netgear", "R6400v2"): (True, True),
        ("Tenda", "AC23"): (True, False),
        ("TP-Link", "TL-XDR3230"): (True, True),
        ("Xiaomi", "AX5"): (True, False),
        ("OpenWrt", "19.07.4"): (True, False),
    }
    for key, (wan, lan) in showcased.items():
        result = by_model[key]
        assert (result.wan_loops, result.lan_loops) == (wan, lan), key

    # Loop magnitude: uncapped units burn the whole hop budget, capped
    # firmware stops after ~10 forwards ("forward such a packet >10 times").
    for result in results:
        crossings = max(result.wan_crossings, result.lan_crossings)
        if result.router.loop_forward_limit is None:
            assert crossings > 200
            assert abs(result.forwards_per_router - 253 / 2) < 2
        else:
            assert 10 <= crossings <= 30
