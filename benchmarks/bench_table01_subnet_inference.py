"""Table I — inferred sub-prefix length for end-users of target ISPs.

Runs the §IV-A boundary-inference algorithm against each simulated block and
checks it recovers every profile's configured delegation length (the paper's
/64, /60, /56 mix), using orders of magnitude fewer probes than exhaustion.
"""

from repro.analysis.tables import table1_subnet_inference
from repro.discovery.subnet import infer_subprefix_length

from benchmarks.conftest import SEED, write_result


def test_table1_subnet_inference(benchmark, deployment):
    inferences = {}

    def infer_all():
        for key, isp in deployment.isps.items():
            inferences[key] = infer_subprefix_length(
                deployment.network, deployment.vantage, isp.scan_base,
                seed=SEED,
            )
        return inferences

    benchmark.pedantic(infer_all, iterations=1, rounds=1)

    table = table1_subnet_inference(inferences)
    write_result("table01_subnet_inference", table)

    for key, inference in inferences.items():
        profile = deployment.isps[key].profile
        assert inference.boundary_length == profile.subprefix_len, key
        assert inference.probes_sent < 600, key
