"""Figure 5 — top 10 routing-loop origin ASNs and countries.

Joins the BGP-wide loop findings through the AS/country registry.  Shape:
the top of the country ranking matches the paper's (BR, CN, EC, VN, US, …)
and the AS ranking is headed by the configured loop-dense ASes.
"""

from repro.analysis.figures import (
    PAPER_FIG5_COUNTRIES,
    figure5_loop_asn_country,
)
from repro.loop.bgp import TOP_LOOP_ASES

from benchmarks.conftest import write_result


def test_fig05_loop_asn_country(benchmark, world, world_loops):
    loop_addrs = [
        r.last_hop for survey in world_loops.values() for r in survey.records
    ]

    asn_table, country_table = benchmark(
        lambda: figure5_loop_asn_country(loop_addrs, world.table)
    )
    write_result("fig05_loop_asn_country", asn_table, country_table)

    # Recompute the rankings for the assertions.
    asn_counts, country_counts = {}, {}
    for addr in loop_addrs:
        info = world.table.lookup(addr)
        asn_counts[info.asn] = asn_counts.get(info.asn, 0) + 1
        country_counts[info.country] = country_counts.get(info.country, 0) + 1

    asn_ranking = sorted(asn_counts, key=asn_counts.get, reverse=True)
    country_ranking = sorted(
        country_counts, key=country_counts.get, reverse=True
    )

    # The loop-dense ASes head the AS ranking, in roughly the Figure 5 order.
    paper_top_asns = [asn for asn, _cc, _n in TOP_LOOP_ASES]
    assert asn_ranking[0] == paper_top_asns[0]  # the Brazilian ISP leads
    assert set(asn_ranking[:10]) >= set(paper_top_asns[:6])

    # Country ranking: Brazil first, and the paper's top-10 dominates.
    assert country_ranking[0] == "BR"
    overlap = len(set(country_ranking[:10]) & set(PAPER_FIG5_COUNTRIES))
    assert overlap >= 6
