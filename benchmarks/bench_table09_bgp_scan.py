"""Table IX — peripheries discovered from BGP-advertised-prefix scanning.

Sweeps the 16-bit sub-prefix space of every advertised prefix in the
synthetic global table (the Routeviews substitute), joins findings through
the BGP/GeoIP lookup, and checks the paper's ratios: loops are a small share
of last hops (~3%), but they touch over half the ASes and most countries.
"""

from repro.analysis.tables import table9_bgp
from repro.discovery.periphery import discover

from benchmarks.conftest import AS_SCALE, SCALE, SEED, write_result


def test_table9_bgp_scan(benchmark, world, world_loops):
    # Discovery sweep across every AS window (the "4M last hops" column).
    def discover_all():
        found = []
        for as_truth in world.ases:
            census = discover(
                world.network, world.vantage, as_truth.scan_spec, seed=SEED
            )
            found.extend(census.records)
        return found

    records = benchmark.pedantic(discover_all, iterations=1, rounds=1)

    asns, countries = set(), set()
    for record in records:
        info = world.table.lookup(record.last_hop)
        assert info is not None
        asns.add(info.asn)
        countries.add(info.country)

    loop_addrs = [
        r.last_hop for survey in world_loops.values() for r in survey.records
    ]
    loop_asns, loop_countries = set(), set()
    for addr in loop_addrs:
        info = world.table.lookup(addr)
        loop_asns.add(info.asn)
        loop_countries.add(info.country)

    table = table9_bgp(
        len(records), len(asns), len(countries),
        len(loop_addrs), len(loop_asns), len(loop_countries),
        SCALE / 10, AS_SCALE,
    )
    write_result("table09_bgp_scan", table)

    # Shape: loops are a minority of last hops but span most of the world.
    loop_share = len(loop_addrs) / len(records)
    assert 0.005 < loop_share < 0.25  # paper: 3.2%
    assert len(loop_asns) / len(asns) > 0.35  # paper: 56%
    assert len(loop_countries) / len(countries) > 0.5  # paper: 78%
    # Every AS with ground-truth loops was detected.
    truth_loop_ases = {a.asn for a in world.ases if a.n_loops}
    assert loop_asns == truth_loop_ases
