"""Table IV — top appeared periphery vendors and device numbers.

Identification runs over embedded MACs plus application-level banners; the
bench checks that the heavyweight vendors of the paper's CPE block (China
Mobile, ZTE, Skyworth, Fiberhome, Youhua Tech) dominate the measured ranking
and that UE devices are attributed to phone brands.
"""

from repro.analysis.tables import table4_vendors
from repro.discovery.vendor_id import VendorIdentifier

from benchmarks.conftest import SCALE, write_result


def test_table4_vendors(benchmark, deployment, censuses, app_results, identified):
    vid = VendorIdentifier(deployment.catalog)
    key = "cn-mobile-broadband"

    benchmark.pedantic(
        lambda: vid.identify(
            censuses[key].records, app_results[key].observations
        ),
        iterations=1, rounds=1,
    )

    all_identified = [d for devices in identified.values() for d in devices]
    table = table4_vendors(all_identified, SCALE)
    write_result("table04_vendors", table)

    counts = VendorIdentifier.vendor_counts(all_identified)
    cpe = counts["CPE"]
    assert cpe, "no CPE vendors identified"
    ranking = sorted(cpe, key=cpe.get, reverse=True)
    # China Mobile leads by a wide margin (paper: 2.0M of 3.9M identified).
    assert ranking[0] == "China Mobile"
    top5 = set(ranking[:5])
    assert top5 & {"ZTE", "Skyworth", "Fiberhome", "Youhua Tech"}
    # UE identifications exist and are phone brands.
    assert sum(counts["UE"].values()) >= 1
    phone_brands = {
        "NTMore", "HMD Global", "Vivo", "Oppo", "Apple", "Samsung", "Nokia",
        "LG", "Motorola", "Lenovo", "Nubia", "OnePlus",
    }
    assert set(counts["UE"]) <= phone_brands
